package likelihood

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// mkPatterns builds compressed patterns from raw sequence rows.
func mkPatterns(t *testing.T, rows ...string) (*seq.Patterns, *seq.Alignment) {
	t.Helper()
	a := seq.NewAlignment(len(rows))
	for i, r := range rows {
		if err := a.Add(fmt.Sprintf("t%02d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	p, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p, a
}

func mkEngine(t *testing.T, m model.Model, rows ...string) *CachedEngine {
	t.Helper()
	p, _ := mkPatterns(t, rows...)
	e, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%02d", i)
	}
	return out
}

// bruteForceLogLikelihood sums over all state assignments of every node,
// an independent (exponential-time) reference for the pruning algorithm.
func bruteForceLogLikelihood(m model.Model, p *seq.Patterns, t *tree.Tree) float64 {
	freqs := m.Freqs()
	d := m.Decomposition()
	var nodes []*tree.Node
	for _, n := range t.Nodes {
		if n != nil {
			nodes = append(nodes, n)
		}
	}
	idx := make(map[int]int, len(nodes)) // node ID -> position
	for i, n := range nodes {
		idx[n.ID] = i
	}
	root := nodes[0]

	total := 0.0
	var pm model.PMatrix
	for pat := 0; pat < p.NumPatterns(); pat++ {
		// Precompute per-edge matrices at this pattern's rate.
		mats := map[[2]int]model.PMatrix{}
		for _, e := range t.Edges() {
			d.Probs(e.Length(), p.Rates[pat], &pm)
			mats[[2]int{e.A.ID, e.B.ID}] = pm
		}
		probOf := func(from, to *tree.Node, i, j int) float64 {
			if m, ok := mats[[2]int{from.ID, to.ID}]; ok {
				return m[i][j]
			}
			m := mats[[2]int{to.ID, from.ID}]
			return m[j][i] // reversible models are symmetric under pi-weighting; use transpose with care
		}
		_ = probOf

		states := make([]int, len(nodes))
		var lkl float64
		var rec func(k int, weight float64)
		rec = func(k int, weight float64) {
			if weight == 0 {
				return
			}
			if k == len(nodes) {
				lkl += weight
				return
			}
			n := nodes[k]
			for s := 0; s < 4; s++ {
				w := weight
				if n.Leaf() {
					code := p.Codes[n.Taxon][pat]
					if code&(1<<uint(s)) == 0 {
						continue
					}
				}
				if n == root {
					w *= freqs[s]
				} else {
					// multiply by transition prob from parent... parent is
					// any already-assigned neighbor (tree order ensures one).
					var parent *tree.Node
					for _, nb := range n.Nbr {
						if idx[nb.ID] < k {
							parent = nb
							break
						}
					}
					if parent == nil {
						// Reorder guarantees violated; skip.
						continue
					}
					var mat model.PMatrix
					d.Probs(parent.LenTo(n), p.Rates[pat], &mat)
					w *= mat[states[idx[parent.ID]]][s]
				}
				states[k] = s
				rec(k+1, w)
			}
		}
		// Order nodes so each non-root has an earlier neighbor: BFS.
		order := []*tree.Node{root}
		seen := map[int]bool{root.ID: true}
		for qi := 0; qi < len(order); qi++ {
			for _, nb := range order[qi].Nbr {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					order = append(order, nb)
				}
			}
		}
		nodes = order
		idx = make(map[int]int, len(nodes))
		for i, n := range nodes {
			idx[n.ID] = i
		}
		root = nodes[0]
		states = make([]int, len(nodes))
		lkl = 0
		rec(0, 1)
		total += p.Weights[pat] * math.Log(lkl)
	}
	return total
}

func TestLogLikelihoodMatchesBruteForce(t *testing.T) {
	rows := []string{
		"ACGTACGTAA",
		"ACGTTCGTAC",
		"AAGTACGAAT",
		"ACCTACGTGG",
		"NCGTRCG-AT",
	}
	p, _ := mkPatterns(t, rows...)
	freqs := seq.EmpiricalFreqsPatterns(p)
	models := []model.Model{model.NewJC69()}
	if f84, err := model.NewF84(freqs, 2.0); err == nil {
		models = append(models, f84)
	}
	if hky, err := model.NewHKY85(freqs, 3.0); err == nil {
		models = append(models, hky)
	}
	rng := rand.New(rand.NewSource(17))
	for _, m := range models {
		e, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tree.RandomTree(taxaNames(5), rng, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.LogLikelihood(tr)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceLogLikelihood(m, p, tr)
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Errorf("%s: pruning lnL %g vs brute force %g", m.Name(), got, want)
		}
	}
}

// TestRerootingInvariance: the likelihood is the same whichever edge it is
// evaluated across.
func TestRerootingInvariance(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTACGTACGTACGT",
		"ACGTACTTACGAACGTACGT",
		"CCGTACGTAGGTACGTACGA",
		"ACGAACGTACGTCCGTACGT",
		"ACGTACGTACTTACGTACCT",
		"TCGTACGTACGTACGTACGT")
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tr, _ := tree.RandomTree(taxaNames(6), rng, 0.2)
	e.ensureBuffers(tr.MaxID())
	var vals []float64
	for _, ed := range tr.Edges() {
		a := e.downPartial(ed.A, ed.B)
		// downPartial reuses buffers; copy side A before computing B.
		ac := clvRef{
			f64: append([]float64(nil), a.f64...),
			sc:  append([]int32(nil), a.sc...),
		}
		b := e.downPartial(ed.B, ed.A)
		vals = append(vals, e.edgeLogLikelihood(ac, b, ed.Length()))
	}
	for i := 1; i < len(vals); i++ {
		if math.Abs(vals[i]-vals[0]) > 1e-8*math.Abs(vals[0]) {
			t.Errorf("edge %d gives lnL %g, edge 0 gives %g", i, vals[i], vals[0])
		}
	}
}

// TestCompressionInvariance: compressed and uncompressed patterns give
// identical likelihoods.
func TestCompressionInvariance(t *testing.T) {
	rows := []string{
		"AACCGGTTAACCGGTTAACC",
		"AACCGGTTAACCGTTTAACC",
		"AACCGGTAAACCGGTTATCC",
		"CACCGGTTAACCGGTTAACC",
	}
	a := seq.NewAlignment(4)
	for i, r := range rows {
		if err := a.Add(fmt.Sprintf("t%02d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	pc, _ := seq.Compress(a, seq.CompressOptions{})
	pu, _ := seq.Compress(a, seq.CompressOptions{Disable: true})
	m := model.NewJC69()
	ec, _ := New(m, pc)
	eu, _ := New(m, pu)
	rng := rand.New(rand.NewSource(7))
	tr, _ := tree.RandomTree(taxaNames(4), rng, 0.1)
	lc, err := ec.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := eu.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lc-lu) > 1e-9*math.Abs(lu) {
		t.Errorf("compressed lnL %g != uncompressed %g", lc, lu)
	}
	if pc.NumPatterns() >= pu.NumPatterns() {
		t.Errorf("compression did not reduce patterns (%d vs %d)", pc.NumPatterns(), pu.NumPatterns())
	}
}

// TestJCDistanceRecovery: for two sequences under JC69, the ML branch
// length has the closed form -3/4 ln(1 - 4p/3).
func TestJCDistanceRecovery(t *testing.T) {
	// 100 sites, 10 mismatches: p = 0.1.
	s1 := ""
	s2 := ""
	for i := 0; i < 100; i++ {
		s1 += "A"
		if i < 10 {
			s2 += "C"
		} else {
			s2 += "A"
		}
	}
	p, _ := mkPatterns(t, s1, s2)
	e, err := New(model.NewJC69(), p)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-leaf "tree": two leaves joined by one edge.
	tr := tree.New(taxaNames(2))
	l0, err := tr.GraftPair(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	_ = l0
	ed := tr.Edges()[0]
	if _, err := e.OptimizeEdge(tr, ed); err != nil {
		t.Fatal(err)
	}
	want := -0.75 * math.Log(1-4*0.1/3)
	if got := ed.Length(); math.Abs(got-want) > 1e-4 {
		t.Errorf("JC distance = %g, want %g", got, want)
	}
}

// TestOptimizeBranchesImproves: smoothing must never lower the likelihood
// and must beat the unoptimized starting point.
func TestOptimizeBranchesImproves(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTACGTACGTACGTACGTACGTACGT",
		"ACGTACTTACGAACGTACGTACGTACGAACGT",
		"CCGTACGTAGGTACGTACGACCGTACGTACGT",
		"ACGAACGTACGTCCGTACGTACGTACGTACGA",
		"ACGTACGTACTTACGTACCTACGTAGGTACGT")
	m, _ := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	e, _ := New(m, p)
	rng := rand.New(rand.NewSource(23))
	tr, _ := tree.RandomTree(taxaNames(5), rng, 0.4)
	before, err := e.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	after, err := e.OptimizeBranches(tr, OptOptions{Passes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if after < before-1e-9 {
		t.Errorf("optimization lowered lnL: %g -> %g", before, after)
	}
	if after-before < 0.01 {
		t.Logf("warning: tiny improvement %g -> %g (random start may be near-optimal)", before, after)
	}
	// Re-evaluating must reproduce the returned value.
	check, _ := e.LogLikelihood(tr)
	if math.Abs(check-after) > 1e-8*math.Abs(after) {
		t.Errorf("returned lnL %g, re-evaluated %g", after, check)
	}
}

// TestOptimizeBranchesLocal: restricting to a neighborhood only changes
// nearby branch lengths.
func TestOptimizeBranchesLocal(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTACGTACGT",
		"ACGTACTTACGAACGT",
		"CCGTACGTAGGTACGT",
		"ACGAACGTACGTCCGT",
		"ACGTACGTACTTACGT",
		"TTGTACGTACGTACGT")
	m := model.NewJC69()
	e, _ := New(m, p)
	rng := rand.New(rand.NewSource(31))
	tr, _ := tree.RandomTree(taxaNames(6), rng, 0.2)
	leaf := tr.LeafByTaxon(3)
	att := leaf.Nbr[0]

	type lenKey struct{ a, b int }
	before := map[lenKey]float64{}
	for _, ed := range tr.Edges() {
		before[lenKey{ed.A.ID, ed.B.ID}] = ed.Length()
	}
	if _, err := e.OptimizeBranches(tr, OptOptions{Passes: 2, Around: att, Radius: 1}); err != nil {
		t.Fatal(err)
	}
	changedFar := 0
	for _, ed := range tr.Edges() {
		delta := math.Abs(before[lenKey{ed.A.ID, ed.B.ID}] - ed.Length())
		near := ed.A == att || ed.B == att
		if !near && delta > 1e-12 {
			changedFar++
		}
	}
	if changedFar > 0 {
		t.Errorf("%d branches outside the radius changed", changedFar)
	}
}

// TestScalingLargeTree: a deep tree must not underflow to -Inf and must
// match the likelihood structure of a small verification.
func TestScalingLargeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 64
	names := taxaNames(n)
	a := seq.NewAlignment(n)
	letters := "ACGT"
	for i := 0; i < n; i++ {
		row := make([]byte, 60)
		for s := range row {
			row[s] = letters[rng.Intn(4)]
		}
		if err := a.Add(names[i], string(row)); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := seq.Compress(a, seq.CompressOptions{})
	e, _ := New(model.NewJC69(), p)
	tr, _ := tree.RandomTree(names, rng, 2.0) // long branches stress underflow
	lnL, err := e.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lnL, 0) || math.IsNaN(lnL) {
		t.Fatalf("lnL = %g (underflow not handled)", lnL)
	}
	if lnL >= 0 {
		t.Errorf("lnL = %g, expected negative", lnL)
	}
}

// TestIdenticalSequencesPreferZeroBranch: optimizing the branch between
// identical sequences drives it to the minimum.
func TestIdenticalSequencesPreferZeroBranch(t *testing.T) {
	row := "ACGTACGTACGTACGTACGTACGTACGTACGT"
	p, _ := mkPatterns(t, row, row)
	e, _ := New(model.NewJC69(), p)
	tr := tree.New(taxaNames(2))
	if _, err := tr.GraftPair(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	ed := tr.Edges()[0]
	if _, err := e.OptimizeEdge(tr, ed); err != nil {
		t.Fatal(err)
	}
	if ed.Length() > 1e-4 {
		t.Errorf("branch between identical sequences = %g, want ~%g", ed.Length(), MinBranchLength)
	}
}

// TestEdgeDerivativesFiniteDifference validates the analytic derivatives
// of the edge log-likelihood.
func TestEdgeDerivativesFiniteDifference(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTAC",
		"ACTTACGAAC",
		"CCGTAGGTAC",
		"AAGAACGTCC")
	m, _ := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	e, _ := New(m, p)
	rng := rand.New(rand.NewSource(3))
	tr, _ := tree.RandomTree(taxaNames(4), rng, 0.2)
	e.ensureBuffers(tr.MaxID())
	ed := tr.Edges()[0]
	a := e.downPartial(ed.A, ed.B)
	ac := clvRef{
		f64: append([]float64(nil), a.f64...),
		sc:  append([]int32(nil), a.sc...),
	}
	b := e.downPartial(ed.B, ed.A)

	z := 0.13
	const h = 1e-6
	f := func(z float64) float64 { return e.edgeLogLikelihood(ac, b, z) }
	d1, d2, lnl := e.edgeDerivatives(ac, b, z)
	fd1 := (f(z+h) - f(z-h)) / (2 * h)
	fd2 := (f(z+h) - 2*f(z) + f(z-h)) / (h * h)
	if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(fd1)) {
		t.Errorf("d1 = %g, finite difference %g", d1, fd1)
	}
	if math.Abs(d2-fd2) > 1e-2*(1+math.Abs(fd2)) {
		t.Errorf("d2 = %g, finite difference %g", d2, fd2)
	}
	if math.Abs(lnl-f(z)) > 1e-9*(1+math.Abs(f(z))) {
		t.Errorf("edgeDerivatives lnL = %g, edgeLogLikelihood %g", lnl, f(z))
	}
}

// TestLikelihoodInvariantQuick: inserting and removing a taxon restores
// the previous likelihood.
func TestLikelihoodInvariantQuick(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTACGT",
		"ACTTACGAACGT",
		"CCGTAGGTACGT",
		"AAGAACGTCCGT",
		"AGGTACGTACCT")
	e, _ := New(model.NewJC69(), p)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.RandomTree(taxaNames(5)[:4], rng, 0.2)
		if err != nil {
			return false
		}
		// Rebuild over 5 taxa names so taxon 4 can be added.
		tr5, err := tree.ParseNewick(tr.Newick(), taxaNames(5))
		if err != nil {
			return false
		}
		before, err := e.LogLikelihood(tr5)
		if err != nil {
			return false
		}
		edges := tr5.Edges()
		if _, err := tr5.InsertLeaf(4, edges[rng.Intn(len(edges))]); err != nil {
			return false
		}
		if err := tr5.RemoveLeaf(4); err != nil {
			return false
		}
		after, err := e.LogLikelihood(tr5)
		if err != nil {
			return false
		}
		return math.Abs(before-after) < 1e-9*math.Abs(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEngineErrors(t *testing.T) {
	p, _ := mkPatterns(t, "ACGT", "ACGA", "CCGT")
	e, _ := New(model.NewJC69(), p)
	// Tree over the wrong number of taxa.
	rng := rand.New(rand.NewSource(1))
	tr, _ := tree.RandomTree(taxaNames(5), rng, 0.1)
	if _, err := e.LogLikelihood(tr); err == nil {
		t.Error("mismatched taxon count should fail")
	}
}

func TestOpsCounterAdvances(t *testing.T) {
	p, _ := mkPatterns(t, "ACGTACGT", "ACGAACGT", "CCGTACGA")
	e, _ := New(model.NewJC69(), p)
	tr, _ := tree.Triple(taxaNames(3), 0, 1, 2)
	if _, err := e.LogLikelihood(tr); err != nil {
		t.Fatal(err)
	}
	if e.Ops() == 0 {
		t.Error("Ops counter did not advance")
	}
	prev := e.ResetOps()
	if prev == 0 || e.Ops() != 0 {
		t.Error("ResetOps did not reset")
	}
}

// TestRateHeterogeneityChangesLikelihood: supplying per-site rates must
// change the likelihood relative to uniform rates.
func TestRateHeterogeneityChangesLikelihood(t *testing.T) {
	rows := []string{
		"ACGTACGTACGTACGT",
		"ACTTACGAACGTACGT",
		"CCGTAGGTACGTACGA",
	}
	a := seq.NewAlignment(3)
	for i, r := range rows {
		_ = a.Add(fmt.Sprintf("t%02d", i), r)
	}
	rates := make([]float64, 16)
	for i := range rates {
		rates[i] = 0.25
		if i%2 == 0 {
			rates[i] = 1.75
		}
	}
	pr, _ := seq.Compress(a, seq.CompressOptions{Rates: rates})
	pu, _ := seq.Compress(a, seq.CompressOptions{})
	er, _ := New(model.NewJC69(), pr)
	eu, _ := New(model.NewJC69(), pu)
	rng := rand.New(rand.NewSource(2))
	tr, _ := tree.RandomTree(taxaNames(3), rng, 0.2)
	lr, err := er.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := eu.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lr-lu) < 1e-9 {
		t.Error("per-site rates had no effect on the likelihood")
	}
}

// TestEngineWithGTR: the engine works with the numerically-decomposed
// GTR model and agrees with F84 when the GTR exchangeabilities mimic it.
func TestEngineWithGTR(t *testing.T) {
	p, _ := mkPatterns(t,
		"ACGTACGTACGTACGT",
		"ACTTACGAACGTACGT",
		"CCGTAGGTACGTACGA",
		"AAGAACGTCCGTACGT")
	freqs := seq.EmpiricalFreqsPatterns(p)
	gtr, err := model.NewGTR(freqs, model.GTRRates{AC: 1, AG: 1, AT: 1, CG: 1, CT: 1, GT: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(gtr, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tr, _ := tree.RandomTree(taxaNames(4), rng, 0.2)
	lnL, err := e.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lnL) || lnL >= 0 {
		t.Fatalf("GTR lnL = %g", lnL)
	}
	// Brute force agreement for the numeric decomposition.
	want := bruteForceLogLikelihood(gtr, p, tr)
	if math.Abs(lnL-want) > 1e-8*math.Abs(want) {
		t.Errorf("GTR pruning lnL %g vs brute force %g", lnL, want)
	}
	// Newton works on the numeric decomposition too.
	after, err := e.OptimizeBranches(tr, OptOptions{Passes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if after < lnL-1e-9 {
		t.Errorf("GTR optimization lowered lnL: %g -> %g", lnL, after)
	}
}

// TestEngineWithDiscreteGammaRates: discrete-gamma category rates flow
// through pattern compression into the engine; more categories must not
// break invariants and must change the likelihood relative to uniform.
func TestEngineWithDiscreteGammaRates(t *testing.T) {
	rows := []string{
		"ACGTACGTACGTACGTTTTT",
		"ACTTACGAACGTACGTTTTA",
		"CCGTAGGTACGTACGATTTT",
		"AAGAACGTCCGTACGTTTCT",
	}
	a := seq.NewAlignment(4)
	for i, r := range rows {
		if err := a.Add(fmt.Sprintf("t%02d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	cats, err := model.DiscreteGamma(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Assign categories round-robin across sites.
	rates := make([]float64, a.NumSites())
	for s := range rates {
		rates[s] = cats[s%len(cats)]
	}
	pg, err := seq.Compress(a, seq.CompressOptions{Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewJC69()
	eg, _ := New(m, pg)
	eu, _ := New(m, pu)
	rng := rand.New(rand.NewSource(6))
	tr, _ := tree.RandomTree(taxaNames(4), rng, 0.15)
	lg, err := eg.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := eu.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lg == lu {
		t.Error("gamma rates had no effect")
	}
	if math.IsNaN(lg) || math.IsInf(lg, 0) {
		t.Fatalf("lnL = %g", lg)
	}
	// Rate-class bookkeeping: 4 distinct rates -> at most 4 classes.
	if len(eg.classRates) > 4 {
		t.Errorf("%d rate classes for 4 categories", len(eg.classRates))
	}
}
