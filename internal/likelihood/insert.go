package likelihood

import (
	"fmt"

	"repro/internal/tree"
)

// Shared-base-tree insertion scoring (paper step 3): a stepwise-addition
// round tries the new taxon on every edge of the same base tree. Instead
// of building each candidate tree and re-running full pruning passes over
// it, an InsertScorer evaluates a candidate entirely at its insertion
// edge: the two directed partials of the edge come from the CLV cache
// (computed once per base tree, shared by every candidate), and the new
// leaf's junction is optimized by combining those two vectors with the
// leaf's tip vector — O(patterns) work per candidate instead of
// O(nodes · patterns).

// InsertScore reports one scored candidate insertion: the log-likelihood
// of the candidate tree and the optimized lengths of the three branches
// meeting at the new junction.
type InsertScore struct {
	LnL float64
	// LenA and LenB are the optimized lengths from the junction toward
	// the insertion edge's A and B endpoints; LenLeaf toward the new
	// leaf.
	LenA, LenB, LenLeaf float64
}

// InsertScorer scores candidate insertions of one taxon into one base
// tree. It is bound to the engine that created it and is not safe for
// concurrent use. The base tree must not be mutated between Score calls.
// Scorers share their engine's arena scratch, so only the most recently
// created scorer of an engine may be used.
type InsertScorer struct {
	e     *Engine
	t     *tree.Tree
	taxon int

	// junction and rest-of-junction scratch vectors, views into the
	// engine arena, reused per call (and across scorers).
	jclv, rest  []float64
	jsc, restSc []int32
}

// NewInsertScorer prepares scoring of candidate insertions of taxon into
// base. The taxon must be covered by the data set and absent from base.
func (e *Engine) NewInsertScorer(base *tree.Tree, taxon int) (*InsertScorer, error) {
	if err := e.checkTree(base); err != nil {
		return nil, err
	}
	if taxon < 0 || taxon >= e.pat.NumSeqs() {
		return nil, fmt.Errorf("likelihood: insert taxon %d outside data set", taxon)
	}
	if base.LeafByTaxon(taxon) != nil {
		return nil, fmt.Errorf("likelihood: taxon %d already in base tree", taxon)
	}
	e.ensureBuffers(base.MaxID())
	if e.insJclv == nil {
		e.insJclv = make([]float64, e.npat*4)
		e.insRest = make([]float64, e.npat*4)
		e.insJsc = make([]int32, e.npat)
		e.insRestSc = make([]int32, e.npat)
	}
	return &InsertScorer{
		e: e, t: base, taxon: taxon,
		jclv: e.insJclv, jsc: e.insJsc,
		rest: e.insRest, restSc: e.insRestSc,
	}, nil
}

// Score evaluates inserting the taxon on edge ed of the base tree,
// mirroring tree.InsertLeaf's starting geometry (the edge length split in
// half, the leaf branch at DefaultBranchLength) and then Newton-optimizing
// the three junction branches for the given number of passes (minimum 1).
// The base tree is not modified.
func (s *InsertScorer) Score(ed tree.Edge, passes int) (InsertScore, error) {
	defer s.e.endEval(s.e.beginEval())
	a, b := ed.A, ed.B
	if a.NbrIndex(b) < 0 {
		return InsertScore{}, fmt.Errorf("likelihood: insertion edge %d-%d does not exist", a.ID, b.ID)
	}
	if passes <= 0 {
		passes = 1
	}
	e := s.e
	half := ed.Length() / 2
	if half <= 0 {
		half = tree.DefaultBranchLength / 2
	}
	za, zb, zl := half, half, tree.DefaultBranchLength

	aclv, asc, _ := e.partial(a, b)
	bclv, bsc, _ := e.partial(b, a)
	tip := e.tips[s.taxon]

	for pass := 0; pass < passes; pass++ {
		// Leaf branch against the junction of both edge sides.
		e.combineInto(s.jclv, s.jsc, aclv, asc, za, true)
		e.combineInto(s.jclv, s.jsc, bclv, bsc, zb, false)
		e.rescale(s.jclv, s.jsc)
		zl = e.newtonEdge(s.jclv, s.jsc, tip, e.zeroScale, zl)

		// Branch toward A against the junction of B-side and leaf.
		e.combineInto(s.rest, s.restSc, bclv, bsc, zb, true)
		e.combineInto(s.rest, s.restSc, tip, e.zeroScale, zl, false)
		e.rescale(s.rest, s.restSc)
		za = e.newtonEdge(aclv, asc, s.rest, s.restSc, za)

		// Branch toward B against the junction of A-side and leaf.
		e.combineInto(s.rest, s.restSc, aclv, asc, za, true)
		e.combineInto(s.rest, s.restSc, tip, e.zeroScale, zl, false)
		e.rescale(s.rest, s.restSc)
		zb = e.newtonEdge(bclv, bsc, s.rest, s.restSc, zb)
	}

	// Final likelihood across the junction-leaf branch.
	e.combineInto(s.jclv, s.jsc, aclv, asc, za, true)
	e.combineInto(s.jclv, s.jsc, bclv, bsc, zb, false)
	e.rescale(s.jclv, s.jsc)
	lnL := e.edgeLogLikelihood(s.jclv, s.jsc, tip, e.zeroScale, zl)
	return InsertScore{LnL: lnL, LenA: za, LenB: zb, LenLeaf: zl}, nil
}
