package likelihood

import (
	"fmt"

	"repro/internal/tree"
)

// Shared-base-tree insertion scoring (paper step 3): a stepwise-addition
// round tries the new taxon on every edge of the same base tree. Instead
// of building each candidate tree and re-running full pruning passes over
// it, an InsertScorer evaluates a candidate entirely at its insertion
// edge: the two directed partials of the edge come from the CLV cache
// (computed once per base tree, shared by every candidate), and the new
// leaf's junction is optimized by combining those two vectors with the
// leaf's tip vector — O(patterns) work per candidate instead of
// O(nodes · patterns).

// InsertScore reports one scored candidate insertion: the log-likelihood
// of the candidate tree and the optimized lengths of the three branches
// meeting at the new junction.
type InsertScore struct {
	LnL float64
	// LenA and LenB are the optimized lengths from the junction toward
	// the insertion edge's A and B endpoints; LenLeaf toward the new
	// leaf.
	LenA, LenB, LenLeaf float64
}

// cachedInsertScorer is the CachedEngine's InsertScorer: it draws the
// insertion edge's directed partials from the CLV cache and reuses the
// engine's arena scratch, so only the most recently created scorer of an
// engine may be used. The base tree must not be mutated between Score
// calls. Not safe for concurrent use.
type cachedInsertScorer struct {
	e     *CachedEngine
	t     *tree.Tree
	taxon int

	// junction and rest-of-junction scratch vectors, views into the
	// engine arena, reused per call (and across scorers).
	j, rest clvRef
}

// NewInsertScorer prepares scoring of candidate insertions of taxon into
// base. The taxon must be covered by the data set and absent from base.
func (e *CachedEngine) NewInsertScorer(base *tree.Tree, taxon int) (InsertScorer, error) {
	if err := e.checkTree(base); err != nil {
		return nil, err
	}
	if taxon < 0 || taxon >= e.pat.NumSeqs() {
		return nil, fmt.Errorf("likelihood: insert taxon %d: %w", taxon, ErrTaxonOutsideData)
	}
	if base.LeafByTaxon(taxon) != nil {
		return nil, fmt.Errorf("likelihood: insert taxon %d: %w", taxon, ErrTaxonInTree)
	}
	e.ensureBuffers(base.MaxID())
	if e.insJ.sc == nil {
		e.insJ.sc = make([]int32, e.npad)
		e.insRest.sc = make([]int32, e.npad)
		if e.prec == Float32 {
			e.insJ.f32 = make([]float32, 4*e.npad)
			e.insRest.f32 = make([]float32, 4*e.npad)
		} else {
			e.insJ.f64 = make([]float64, 4*e.npad)
			e.insRest.f64 = make([]float64, 4*e.npad)
		}
	}
	return &cachedInsertScorer{
		e: e, t: base, taxon: taxon,
		j: e.insJ, rest: e.insRest,
	}, nil
}

// Score evaluates inserting the taxon on edge ed of the base tree,
// mirroring tree.InsertLeaf's starting geometry (the edge length split in
// half, the leaf branch at DefaultBranchLength) and then Newton-optimizing
// the three junction branches for the given number of passes (minimum 1).
// The base tree is not modified.
func (s *cachedInsertScorer) Score(ed tree.Edge, passes int) (InsertScore, error) {
	defer s.e.endEval(s.e.beginEval())
	a, b := ed.A, ed.B
	if a.NbrIndex(b) < 0 {
		return InsertScore{}, fmt.Errorf("likelihood: insertion edge %d-%d: %w", a.ID, b.ID, ErrEdgeNotFound)
	}
	if passes <= 0 {
		passes = 1
	}
	e := s.e
	half := ed.Length() / 2
	if half <= 0 {
		half = tree.DefaultBranchLength / 2
	}
	za, zb, zl := half, half, tree.DefaultBranchLength

	aref, _ := e.partial(a, b)
	bref, _ := e.partial(b, a)
	tip := e.tipRef(s.taxon)

	for pass := 0; pass < passes; pass++ {
		// Leaf branch against the junction of both edge sides.
		e.combine2Into(s.j, aref, bref, za, zb)
		zl = e.newtonEdge(s.j, tip, zl)

		// Branch toward A against the junction of B-side and leaf.
		e.combine2Into(s.rest, bref, tip, zb, zl)
		za = e.newtonEdge(aref, s.rest, za)

		// Branch toward B against the junction of A-side and leaf.
		e.combine2Into(s.rest, aref, tip, za, zl)
		zb = e.newtonEdge(bref, s.rest, zb)
	}

	// Final likelihood across the junction-leaf branch.
	e.combine2Into(s.j, aref, bref, za, zb)
	lnL := e.edgeLogLikelihood(s.j, tip, zl)
	return InsertScore{LnL: lnL, LenA: za, LenB: zb, LenLeaf: zl}, nil
}
