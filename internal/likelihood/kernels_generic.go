//go:build !amd64

package likelihood

// Non-amd64 builds have no vector combine; the engine never allocates
// the broadcast table and always takes the scalar path.
const useAVX2 = false

func combine2F64(dst, a, b []float64, ma, mb *[4][4]float64, tab *[33][4]float64,
	dsc, asc, bsc []int32, npad, lo, n int) {
	segCombine2(dst, a, b, ma, mb, dsc, asc, bsc, scaleThreshold, scaleFactor, npad, lo, n)
}
