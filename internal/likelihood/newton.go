package likelihood

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// Branch length optimization: DNAml's makenewz. The likelihood of an edge
// factorizes as L(z) = Σ_p w_p log Σ_ij π_i A_p[i] P_ij(z) B_p[j], where A
// is the conditional likelihood of one side and B of the other; P and its
// z-derivatives are closed-form (spectral decomposition), so Newton's
// method applies directly, with bisection-style fallbacks and the
// [MinBranchLength, MaxBranchLength] bounds.

// OptOptions control branch length optimization.
type OptOptions struct {
	// Passes is the maximum number of full smoothing passes over the
	// selected branches (fastDNAml's smoothings). Default 8.
	Passes int
	// Tol stops the pass loop when a full pass improves the total
	// log-likelihood by less than this. Default 1e-5.
	Tol float64
	// Around restricts optimization to branches within Radius vertices
	// of this node (nil optimizes every branch). This mirrors
	// fastDNAml's insertion-time behaviour of optimizing only the
	// branches near the new taxon before the full smoothing of the
	// round's best tree.
	Around *tree.Node
	// Radius is the vertex distance bound used with Around; 1 selects
	// only the branches incident to Around. Default 1.
	Radius int
}

func (o OptOptions) withDefaults() OptOptions {
	if o.Passes <= 0 {
		o.Passes = 8
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Radius <= 0 {
		o.Radius = 1
	}
	return o
}

// OptimizeBranches optimizes branch lengths in place and returns the final
// log-likelihood. With Around set, only nearby branches are optimized but
// the returned value is still the full-tree log-likelihood.
func (e *Engine) OptimizeBranches(t *tree.Tree, opt OptOptions) (float64, error) {
	opt = opt.withDefaults()
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	e.ensureBuffers(t.MaxID())

	var allowed map[[2]int]bool
	if opt.Around != nil {
		allowed = edgeSetAround(opt.Around, opt.Radius)
	}

	anchor := t.AnyNode()
	if anchor.Leaf() {
		// Fall back to its neighbor when the tree is a single cherry.
		if anchor.Degree() > 0 && !anchor.Nbr[0].Leaf() {
			anchor = anchor.Nbr[0]
		}
	}

	prev := math.Inf(-1)
	last := prev
	for pass := 0; pass < opt.Passes; pass++ {
		e.smoothPass(t, anchor, allowed)
		lnL, err := e.LogLikelihood(t)
		if err != nil {
			return 0, err
		}
		last = lnL
		if lnL-prev < opt.Tol {
			break
		}
		prev = lnL
	}
	return last, nil
}

// edgeSetAround collects the undirected edges within radius vertices of n.
func edgeSetAround(n *tree.Node, radius int) map[[2]int]bool {
	out := make(map[[2]int]bool)
	type item struct {
		node *tree.Node
		dist int
	}
	visited := map[int]bool{n.ID: true}
	queue := []item{{n, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.dist >= radius {
			continue
		}
		for _, m := range cur.node.Nbr {
			out[edgeKey(cur.node, m)] = true
			if !visited[m.ID] {
				visited[m.ID] = true
				queue = append(queue, item{m, cur.dist + 1})
			}
		}
	}
	return out
}

func edgeKey(a, b *tree.Node) [2]int {
	if a.ID < b.ID {
		return [2]int{a.ID, b.ID}
	}
	return [2]int{b.ID, a.ID}
}

// smoothPass performs one depth-first smoothing pass from anchor: fresh
// down partials, then per-edge Newton visits with "rest of tree" partials
// propagated downward.
func (e *Engine) smoothPass(t *tree.Tree, anchor *tree.Node, allowed map[[2]int]bool) {
	npat := e.pat.NumPatterns()
	// Fresh down partials for every direction away from anchor.
	for _, child := range anchor.Nbr {
		e.downPartial(child, anchor)
	}

	// Per-node rest buffers (allocated lazily, reused across passes).
	if e.restClv == nil {
		e.restClv = map[int][]float64{}
		e.restScale = map[int][]int32{}
	}
	restOf := func(id int) ([]float64, []int32) {
		if e.restClv[id] == nil {
			e.restClv[id] = make([]float64, npat*4)
			e.restScale[id] = make([]int32, npat)
		}
		return e.restClv[id], e.restScale[id]
	}

	// computeRest fills rest(p->u): the partial at p excluding subtree(u).
	// parentRest is rest(pp->p) when p has a parent pp (nil at anchor).
	computeRest := func(p, u, pp *tree.Node, parentRest []float64, parentRestSc []int32) ([]float64, []int32) {
		rclv, rsc := restOf(u.ID)
		first := true
		for i, v := range p.Nbr {
			if v == u {
				continue
			}
			var src []float64
			var srcSc []int32
			if v == pp {
				src, srcSc = parentRest, parentRestSc
			} else {
				src, srcSc = e.clv[v.ID], e.scale[v.ID]
			}
			e.fillProbs(clampLen(p.Len[i]))
			e.ops += uint64(npat) * 16
			if first {
				for pt := 0; pt < npat; pt++ {
					pm := &e.pmat[e.classOf[pt]]
					c0, c1, c2, c3 := src[pt*4], src[pt*4+1], src[pt*4+2], src[pt*4+3]
					for j := 0; j < 4; j++ {
						rclv[pt*4+j] = pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
					}
					rsc[pt] = srcSc[pt]
				}
				first = false
			} else {
				for pt := 0; pt < npat; pt++ {
					pm := &e.pmat[e.classOf[pt]]
					c0, c1, c2, c3 := src[pt*4], src[pt*4+1], src[pt*4+2], src[pt*4+3]
					for j := 0; j < 4; j++ {
						rclv[pt*4+j] *= pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
					}
					rsc[pt] += srcSc[pt]
				}
			}
		}
		if first {
			// p is a leaf seen from u: rest is p's tip vector.
			copy(rclv, e.tips[p.Taxon])
			for i := range rsc {
				rsc[i] = 0
			}
		}
		// Rescale.
		for pt := 0; pt < npat; pt++ {
			m := rclv[pt*4]
			for j := 1; j < 4; j++ {
				if rclv[pt*4+j] > m {
					m = rclv[pt*4+j]
				}
			}
			if m < scaleThreshold && m > 0 {
				for j := 0; j < 4; j++ {
					rclv[pt*4+j] *= scaleFactor
				}
				rsc[pt]++
			}
		}
		return rclv, rsc
	}

	// DFS: optimize edge (p->u), then descend.
	var visit func(u, p, pp *tree.Node, parentRest []float64, parentRestSc []int32)
	visit = func(u, p, pp *tree.Node, parentRest []float64, parentRestSc []int32) {
		rclv, rsc := computeRest(p, u, pp, parentRest, parentRestSc)
		if allowed == nil || allowed[edgeKey(p, u)] {
			z0 := u.LenTo(p)
			z := e.newtonEdge(rclv, rsc, e.clv[u.ID], e.scale[u.ID], z0)
			tree.SetLen(p, u, z)
		}
		for _, c := range u.Nbr {
			if c != p {
				visit(c, u, p, rclv, rsc)
			}
		}
		// Refresh u's down partial with the updated lengths below it, so
		// subsequent siblings at p see current values. The children's
		// buffers are already fresh (their visits refreshed them), so a
		// single non-recursive combine suffices.
		if !u.Leaf() {
			e.refreshNode(u, p)
		}
	}
	for _, child := range anchor.Nbr {
		visit(child, anchor, nil, nil, nil)
	}
}

// newtonEdge maximizes the edge log-likelihood over the branch length,
// starting from z0, returning the improved length (never worse than z0).
func (e *Engine) newtonEdge(aclv []float64, asc []int32, bclv []float64, bsc []int32, z0 float64) float64 {
	z := clampLen(z0)
	start := z
	for iter := 0; iter < newtonMaxIter; iter++ {
		d1, d2 := e.edgeDerivatives(aclv, bclv, z)
		var next float64
		if d2 < 0 {
			next = z - d1/d2
		} else {
			// Not locally concave: move geometrically in the gradient
			// direction (the likelihood is convex in z when the optimum
			// sits at a bound, e.g. identical sequences).
			if d1 > 0 {
				next = z * 8
			} else {
				next = z / 8
			}
		}
		if math.IsNaN(next) || math.IsInf(next, 0) {
			break
		}
		next = clampLen(next)
		// Dampen huge Newton jumps (fastDNAml limits the step as well).
		if next > 8*z {
			next = 8 * z
		}
		if next < z/8 {
			next = z / 8
		}
		next = clampLen(next)
		if math.Abs(next-z) < newtonTol*(z+newtonTol) {
			z = next
			break
		}
		z = next
	}
	// Guard: accept only if not worse than the starting length.
	if z != start {
		before := e.edgeLogLikelihood(aclv, asc, bclv, bsc, start)
		after := e.edgeLogLikelihood(aclv, asc, bclv, bsc, z)
		if after < before {
			return start
		}
	}
	return z
}

// edgeDerivatives computes d/dz and d²/dz² of the edge log-likelihood.
func (e *Engine) edgeDerivatives(aclv, bclv []float64, z float64) (float64, float64) {
	npat := e.pat.NumPatterns()
	e.fillProbsDeriv(clampLen(z))
	e.ops += uint64(npat) * 48
	d1, d2 := 0.0, 0.0
	for p := 0; p < npat; p++ {
		ci := e.classOf[p]
		pm, dm, ddm := &e.pmat[ci], &e.dmat[ci], &e.ddmat[ci]
		b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
		var l, dl, ddl float64
		for i := 0; i < 4; i++ {
			ai := e.freqs[i] * aclv[p*4+i]
			l += ai * (pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
			dl += ai * (dm[i][0]*b0 + dm[i][1]*b1 + dm[i][2]*b2 + dm[i][3]*b3)
			ddl += ai * (ddm[i][0]*b0 + ddm[i][1]*b1 + ddm[i][2]*b2 + ddm[i][3]*b3)
		}
		if l <= 0 {
			l = math.SmallestNonzeroFloat64
		}
		w := e.pat.Weights[p]
		r := dl / l
		d1 += w * r
		d2 += w * (ddl/l - r*r)
	}
	return d1, d2
}

// OptimizeEdge optimizes a single edge's branch length in place and
// returns the resulting full-tree log-likelihood. Exposed for tests and
// fine-grained use.
func (e *Engine) OptimizeEdge(t *tree.Tree, ed tree.Edge) (float64, error) {
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	if ed.A.NbrIndex(ed.B) < 0 {
		return 0, fmt.Errorf("likelihood: edge %d-%d does not exist", ed.A.ID, ed.B.ID)
	}
	e.ensureBuffers(t.MaxID())
	aclv, asc := e.downPartial(ed.A, ed.B)
	bclv, bsc := e.downPartial(ed.B, ed.A)
	z := e.newtonEdge(aclv, asc, bclv, bsc, ed.Length())
	tree.SetLen(ed.A, ed.B, z)
	return e.edgeLogLikelihood(aclv, asc, bclv, bsc, z), nil
}
