package likelihood

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// Branch length optimization: DNAml's makenewz. The likelihood of an edge
// factorizes as L(z) = Σ_p w_p log Σ_ij π_i A_p[i] P_ij(z) B_p[j], where A
// is the conditional likelihood of one side and B of the other; P and its
// z-derivatives are closed-form (spectral decomposition), so Newton's
// method applies directly, with bisection-style fallbacks and the
// [MinBranchLength, MaxBranchLength] bounds.
//
// The smoothing pass draws both directed partials of each visited edge
// from the CLV cache: the "rest of tree" vector at (p seen from u) is
// just the directed partial in the opposite direction, so no separate
// rest-buffer machinery is needed and untouched regions of the tree cost
// nothing to revisit.

// OptOptions control branch length optimization.
type OptOptions struct {
	// Passes is the maximum number of full smoothing passes over the
	// selected branches (fastDNAml's smoothings). Default 8.
	Passes int
	// Tol stops the pass loop when a full pass improves the total
	// log-likelihood by less than this. Default 1e-5.
	Tol float64
	// Around restricts optimization to branches within Radius vertices
	// of this node (nil optimizes every branch). This mirrors
	// fastDNAml's insertion-time behaviour of optimizing only the
	// branches near the new taxon before the full smoothing of the
	// round's best tree.
	Around *tree.Node
	// Centers optionally lists several centers; the optimized region is
	// the union of the Radius-neighborhoods of all of them (and of
	// Around when also set). Rearrangement scoring uses this to smooth
	// both the regraft junction and the prune site.
	Centers []*tree.Node
	// Radius is the vertex distance bound used with Around/Centers; 1
	// selects only the incident branches. Default 1.
	Radius int
	// Mode selects the smoothing algorithm: SmoothSweep (default) is
	// the sequential per-edge Newton sweep; SmoothGradient runs
	// simultaneous smoothing on the linear-time all-branches gradient
	// with a safeguarded fallback to the sweep (gradient.go). Engines
	// without the GradientSmoother capability, and restricted
	// (Around/Centers) optimizations, always sweep.
	Mode SmoothMode
}

func (o OptOptions) withDefaults() OptOptions {
	if o.Passes <= 0 {
		o.Passes = 8
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Radius <= 0 {
		o.Radius = 1
	}
	return o
}

// OptimizeBranches optimizes branch lengths in place and returns the final
// log-likelihood. With Around/Centers set, only nearby branches are
// optimized but the returned value is still the full-tree log-likelihood.
func (e *CachedEngine) OptimizeBranches(t *tree.Tree, opt OptOptions) (float64, error) {
	defer e.endEval(e.beginEval())
	opt = opt.withDefaults()
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	e.ensureBuffers(t.MaxID())

	var allowed map[[2]int]bool
	if opt.Around != nil || len(opt.Centers) > 0 {
		allowed = make(map[[2]int]bool)
		if opt.Around != nil {
			edgeSetAround(opt.Around, opt.Radius, allowed)
		}
		for _, c := range opt.Centers {
			if c != nil {
				edgeSetAround(c, opt.Radius, allowed)
			}
		}
	}

	anchor := smoothAnchor(t)
	if opt.Mode == SmoothGradient && allowed == nil {
		return e.optimizeBranchesGradient(t, opt, anchor)
	}
	return e.optimizeBranchesSweep(t, opt, anchor, allowed)
}

// optimizeBranchesSweep is the sequential smoothing loop: full
// depth-first Newton sweeps until a pass improves the log-likelihood by
// less than Tol or the pass budget runs out.
func (e *CachedEngine) optimizeBranchesSweep(t *tree.Tree, opt OptOptions, anchor *tree.Node, allowed map[[2]int]bool) (float64, error) {
	prev := math.Inf(-1)
	last := prev
	for pass := 0; pass < opt.Passes; pass++ {
		e.smoothPass(anchor, allowed)
		e.stats.SmoothPasses++
		lnL, err := e.LogLikelihood(t)
		if err != nil {
			return 0, err
		}
		last = lnL
		if lnL-prev < opt.Tol {
			break
		}
		prev = lnL
	}
	return last, nil
}

// edgeSetAround adds the undirected edges within radius vertices of n to
// out.
func edgeSetAround(n *tree.Node, radius int, out map[[2]int]bool) {
	type item struct {
		node *tree.Node
		dist int
	}
	visited := map[int]bool{n.ID: true}
	queue := []item{{n, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.dist >= radius {
			continue
		}
		for _, m := range cur.node.Nbr {
			out[edgeKey(cur.node, m)] = true
			if !visited[m.ID] {
				visited[m.ID] = true
				queue = append(queue, item{m, cur.dist + 1})
			}
		}
	}
}

func edgeKey(a, b *tree.Node) [2]int {
	if a.ID < b.ID {
		return [2]int{a.ID, b.ID}
	}
	return [2]int{b.ID, a.ID}
}

// smoothPass performs one depth-first smoothing pass from anchor,
// visiting each edge once. Both directed partials come from the CLV
// cache, so each visit recomputes only the vectors the previous Newton
// updates invalidated — on a locally-edited tree, almost nothing.
// Children are visited in node-ID order (Nbr order is not stable across
// topology edits) so the sequence of Newton updates — and therefore the
// exact optimized lengths — is independent of the tree's edit history.
func (e *CachedEngine) smoothPass(anchor *tree.Node, allowed map[[2]int]bool) {
	var visit func(u, p *tree.Node)
	visit = func(u, p *tree.Node) {
		if allowed == nil || allowed[edgeKey(p, u)] {
			a, _ := e.partial(p, u) // rest of tree seen from u
			b, _ := e.partial(u, p) // subtree at u
			z0 := u.LenTo(p)
			z := e.newtonEdge(a, b, z0)
			tree.SetLen(p, u, z) // no-op (and no invalidation) when z == z0
		}
		for _, c := range childrenByID(u, p) {
			visit(c, u)
		}
	}
	for _, child := range childrenByID(anchor, nil) {
		visit(child, anchor)
	}
}

// childrenByID returns u's neighbors other than p, sorted by node ID.
func childrenByID(u, p *tree.Node) []*tree.Node {
	out := make([]*tree.Node, 0, len(u.Nbr))
	for _, c := range u.Nbr {
		if c != p {
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// newtonEdge maximizes the edge log-likelihood over the branch length,
// starting from z0. It returns the best length among the evaluated
// iterates, z0 included, so the result is never worse than the start —
// the accept/reject guard reuses the likelihood values edgeDerivatives
// already computes instead of paying two extra evaluation passes.
func (e *CachedEngine) newtonEdge(a, b clvRef, z0 float64) float64 {
	z := clampLen(z0)
	bestZ, bestL := z, math.Inf(-1)
	for iter := 0; iter < newtonMaxIter; iter++ {
		e.stats.NewtonIters++
		d1, d2, lnl := e.edgeDerivatives(a, b, z)
		if lnl > bestL {
			bestL, bestZ = lnl, z
		}
		next, stop := newtonStep(z, d1, d2)
		if stop {
			break
		}
		z = next
	}
	return bestZ
}

// newtonStep computes the next Newton iterate for a branch length from
// the current iterate and the first/second derivatives of the edge
// log-likelihood, reporting stop=true when iteration should end (an
// unusable step or convergence within newtonTol). It is a pure function
// shared by every in-tree engine so backends walk bit-identical iterate
// sequences from identical derivatives.
func newtonStep(z, d1, d2 float64) (float64, bool) {
	var next float64
	if d2 < 0 {
		next = z - d1/d2
	} else {
		// Not locally concave: move geometrically in the gradient
		// direction (the likelihood is convex in z when the optimum
		// sits at a bound, e.g. identical sequences).
		if d1 > 0 {
			next = z * 8
		} else {
			next = z / 8
		}
	}
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return z, true
	}
	next = clampLen(next)
	// Dampen huge Newton jumps (fastDNAml limits the step as well).
	if next > 8*z {
		next = 8 * z
	}
	if next < z/8 {
		next = z / 8
	}
	next = clampLen(next)
	if math.Abs(next-z) < newtonTol*(z+newtonTol) {
		return next, true
	}
	return next, false
}

// edgeDerivatives computes d/dz and d²/dz² of the edge log-likelihood at
// z, plus the log-likelihood itself (the log factors fall out of the
// derivative terms, so the value costs only the per-pattern log the
// guard in newtonEdge would otherwise pay for separately).
func (e *CachedEngine) edgeDerivatives(a, b clvRef, z float64) (float64, float64, float64) {
	e.fillProbsDeriv(clampLen(z))
	e.ops += uint64(e.npat) * 48
	k := &e.kern
	k.op = kDeriv
	k.a, k.b = a, b
	e.runShards()
	// Ordered reduction over the per-shard derivative partials.
	d1, d2, lnL := 0.0, 0.0, 0.0
	for s := range e.shards {
		d1 += e.shD1[s]
		d2 += e.shD2[s]
		lnL += e.shLnL[s]
	}
	return d1, d2, lnL
}

// OptimizeEdge optimizes a single edge's branch length in place and
// returns the resulting full-tree log-likelihood. Exposed for tests and
// fine-grained use.
func (e *CachedEngine) OptimizeEdge(t *tree.Tree, ed tree.Edge) (float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	if ed.A.NbrIndex(ed.B) < 0 {
		return 0, fmt.Errorf("likelihood: edge %d-%d: %w", ed.A.ID, ed.B.ID, ErrEdgeNotFound)
	}
	e.ensureBuffers(t.MaxID())
	a, _ := e.partial(ed.A, ed.B)
	b, _ := e.partial(ed.B, ed.A)
	z := e.newtonEdge(a, b, ed.Length())
	tree.SetLen(ed.A, ed.B, z)
	return e.edgeLogLikelihood(a, b, z), nil
}
