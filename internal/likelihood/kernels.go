package likelihood

import (
	"math"

	"repro/internal/model"
)

// Pattern-loop kernels over the structure-of-arrays CLV layout.
//
// A CLV buffer holds four contiguous lanes of npad entries each — one
// lane per nucleotide state — so the per-site 4-state update is a
// straight-line loop over parallel arrays instead of a strided walk over
// interleaved [pattern*4+state] records. Each kernel body follows the
// same discipline:
//
//   - lanes are re-sliced to the exact segment length at the loop head,
//     so the compiler proves every index in bounds once and the loop
//     runs bounds-check-free (verified with -d=ssa/check_bce);
//   - the 16 transition-matrix coefficients are hoisted into locals
//     before the loop (gc performs no loop-invariant code motion, and
//     stores to the destination lanes would otherwise force a reload of
//     every coefficient on every pattern);
//   - the arithmetic per pattern is the exact expression the previous
//     interleaved kernels evaluated, in the same order, so float64
//     results are bit-identical to the pre-SoA engine.
//
// The kernels are generic over the CLV element type (clvFloat): pruning
// combines and rescaling run entirely in T, while every log-likelihood
// and derivative reduction converts T to float64 at the load and
// accumulates in float64 — identical math for T=float64, and much
// better-conditioned sums than float32 accumulation for T=float32.

// clvFloat is the element type of a conditional likelihood vector.
type clvFloat interface {
	float32 | float64
}

// lanes returns the four state lanes of a SoA CLV buffer restricted to
// the padded range [lo, lo+n).
func lanes[T clvFloat](clv []T, npad, lo, n int) (l0, l1, l2, l3 []T) {
	l0 = clv[lo : lo+n]
	l1 = clv[npad+lo : npad+lo+n]
	l2 = clv[2*npad+lo : 2*npad+lo+n]
	l3 = clv[3*npad+lo : 3*npad+lo+n]
	return
}

// segCombineFirst assigns dst = P·src over the padded range [lo, lo+n):
// the first child-edge combine of a Felsenstein pruning step.
func segCombineFirst[T clvFloat](dst, src []T, m *[4][4]T, npad, lo, n int) {
	d0, d1, d2, d3 := lanes(dst, npad, lo, n)
	s0, s1, s2, s3 := lanes(src, npad, lo, n)
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	d1, d2, d3 = d1[:len(d0)], d2[:len(d0)], d3[:len(d0)]
	s0, s1, s2, s3 = s0[:len(d0)], s1[:len(d0)], s2[:len(d0)], s3[:len(d0)]
	for i := range d0 {
		c0, c1, c2, c3 := s0[i], s1[i], s2[i], s3[i]
		d0[i] = m00*c0 + m01*c1 + m02*c2 + m03*c3
		d1[i] = m10*c0 + m11*c1 + m12*c2 + m13*c3
		d2[i] = m20*c0 + m21*c1 + m22*c2 + m23*c3
		d3[i] = m30*c0 + m31*c1 + m32*c2 + m33*c3
	}
}

// segCombineMul multiplies dst *= P·src over the padded range
// [lo, lo+n): subsequent child-edge combines.
func segCombineMul[T clvFloat](dst, src []T, m *[4][4]T, npad, lo, n int) {
	d0, d1, d2, d3 := lanes(dst, npad, lo, n)
	s0, s1, s2, s3 := lanes(src, npad, lo, n)
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	d1, d2, d3 = d1[:len(d0)], d2[:len(d0)], d3[:len(d0)]
	s0, s1, s2, s3 = s0[:len(d0)], s1[:len(d0)], s2[:len(d0)], s3[:len(d0)]
	for i := range d0 {
		c0, c1, c2, c3 := s0[i], s1[i], s2[i], s3[i]
		d0[i] *= m00*c0 + m01*c1 + m02*c2 + m03*c3
		d1[i] *= m10*c0 + m11*c1 + m12*c2 + m13*c3
		d2[i] *= m20*c0 + m21*c1 + m22*c2 + m23*c3
		d3[i] *= m30*c0 + m31*c1 + m32*c2 + m33*c3
	}
}

// segCombineFirstResc is segCombineFirst fused with rescaling and scale
// propagation: the final values are rescaled in registers before the
// single store, eliminating the separate read-modify-write rescale pass.
// The products are the same floating-point operations the unfused
// combine-then-rescale sequence performs, so results are bit-identical.
func segCombineFirstResc[T clvFloat](dst, src []T, m *[4][4]T, dsc, ssc []int32, thresh, factor T, npad, lo, n int) {
	d0, d1, d2, d3 := lanes(dst, npad, lo, n)
	s0, s1, s2, s3 := lanes(src, npad, lo, n)
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	d1, d2, d3 = d1[:len(d0)], d2[:len(d0)], d3[:len(d0)]
	s0, s1, s2, s3 = s0[:len(d0)], s1[:len(d0)], s2[:len(d0)], s3[:len(d0)]
	sd := dsc[lo : lo+n]
	sd = sd[:len(d0)]
	ss := ssc[lo : lo+n]
	ss = ss[:len(d0)]
	for i := range d0 {
		c0, c1, c2, c3 := s0[i], s1[i], s2[i], s3[i]
		v0 := m00*c0 + m01*c1 + m02*c2 + m03*c3
		v1 := m10*c0 + m11*c1 + m12*c2 + m13*c3
		v2 := m20*c0 + m21*c1 + m22*c2 + m23*c3
		v3 := m30*c0 + m31*c1 + m32*c2 + m33*c3
		sc := ss[i]
		mx := v0
		if v1 > mx {
			mx = v1
		}
		if v2 > mx {
			mx = v2
		}
		if v3 > mx {
			mx = v3
		}
		if mx < thresh && mx > 0 {
			v0 *= factor
			v1 *= factor
			v2 *= factor
			v3 *= factor
			sc++
		}
		d0[i], d1[i], d2[i], d3[i] = v0, v1, v2, v3
		sd[i] = sc
	}
}

// segCombineMulResc is segCombineMul fused with rescaling and scale
// accumulation, used for the last child combine of a pruning step.
func segCombineMulResc[T clvFloat](dst, src []T, m *[4][4]T, dsc, ssc []int32, thresh, factor T, npad, lo, n int) {
	d0, d1, d2, d3 := lanes(dst, npad, lo, n)
	s0, s1, s2, s3 := lanes(src, npad, lo, n)
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	d1, d2, d3 = d1[:len(d0)], d2[:len(d0)], d3[:len(d0)]
	s0, s1, s2, s3 = s0[:len(d0)], s1[:len(d0)], s2[:len(d0)], s3[:len(d0)]
	sd := dsc[lo : lo+n]
	sd = sd[:len(d0)]
	ss := ssc[lo : lo+n]
	ss = ss[:len(d0)]
	for i := range d0 {
		c0, c1, c2, c3 := s0[i], s1[i], s2[i], s3[i]
		v0 := d0[i] * (m00*c0 + m01*c1 + m02*c2 + m03*c3)
		v1 := d1[i] * (m10*c0 + m11*c1 + m12*c2 + m13*c3)
		v2 := d2[i] * (m20*c0 + m21*c1 + m22*c2 + m23*c3)
		v3 := d3[i] * (m30*c0 + m31*c1 + m32*c2 + m33*c3)
		sc := sd[i] + ss[i]
		mx := v0
		if v1 > mx {
			mx = v1
		}
		if v2 > mx {
			mx = v2
		}
		if v3 > mx {
			mx = v3
		}
		if mx < thresh && mx > 0 {
			v0 *= factor
			v1 *= factor
			v2 *= factor
			v3 *= factor
			sc++
		}
		d0[i], d1[i], d2[i], d3[i] = v0, v1, v2, v3
		sd[i] = sc
	}
}

// segCombine2 performs a complete binary pruning step in one pass:
// dst = (Ma·a) ⊙ (Mb·b), with underflow rescaling and scale-count
// accumulation fused in. Inner nodes of a bifurcating tree have exactly
// two children, so this kernel computes their CLV without ever storing
// (or re-loading) the intermediate first-child product — the values
// stay in registers between the two matrix applications. The products
// are the same floating-point operations the first/mul kernel pair
// performs, so results are bit-identical.
func segCombine2[T clvFloat](dst, a, b []T, ma, mb *[4][4]T, dsc, asc, bsc []int32,
	thresh, factor T, npad, lo, n int) {
	d0, d1, d2, d3 := lanes(dst, npad, lo, n)
	a0, a1, a2, a3 := lanes(a, npad, lo, n)
	b0, b1, b2, b3 := lanes(b, npad, lo, n)
	p00, p01, p02, p03 := ma[0][0], ma[0][1], ma[0][2], ma[0][3]
	p10, p11, p12, p13 := ma[1][0], ma[1][1], ma[1][2], ma[1][3]
	p20, p21, p22, p23 := ma[2][0], ma[2][1], ma[2][2], ma[2][3]
	p30, p31, p32, p33 := ma[3][0], ma[3][1], ma[3][2], ma[3][3]
	q00, q01, q02, q03 := mb[0][0], mb[0][1], mb[0][2], mb[0][3]
	q10, q11, q12, q13 := mb[1][0], mb[1][1], mb[1][2], mb[1][3]
	q20, q21, q22, q23 := mb[2][0], mb[2][1], mb[2][2], mb[2][3]
	q30, q31, q32, q33 := mb[3][0], mb[3][1], mb[3][2], mb[3][3]
	d1, d2, d3 = d1[:len(d0)], d2[:len(d0)], d3[:len(d0)]
	a0, a1, a2, a3 = a0[:len(d0)], a1[:len(d0)], a2[:len(d0)], a3[:len(d0)]
	b0, b1, b2, b3 = b0[:len(d0)], b1[:len(d0)], b2[:len(d0)], b3[:len(d0)]
	sd := dsc[lo : lo+n]
	sd = sd[:len(d0)]
	sa := asc[lo : lo+n]
	sa = sa[:len(d0)]
	sb := bsc[lo : lo+n]
	sb = sb[:len(d0)]
	for i := range d0 {
		c0, c1, c2, c3 := a0[i], a1[i], a2[i], a3[i]
		e0, e1, e2, e3 := b0[i], b1[i], b2[i], b3[i]
		v0 := (p00*c0 + p01*c1 + p02*c2 + p03*c3) * (q00*e0 + q01*e1 + q02*e2 + q03*e3)
		v1 := (p10*c0 + p11*c1 + p12*c2 + p13*c3) * (q10*e0 + q11*e1 + q12*e2 + q13*e3)
		v2 := (p20*c0 + p21*c1 + p22*c2 + p23*c3) * (q20*e0 + q21*e1 + q22*e2 + q23*e3)
		v3 := (p30*c0 + p31*c1 + p32*c2 + p33*c3) * (q30*e0 + q31*e1 + q32*e2 + q33*e3)
		sc := sa[i] + sb[i]
		mx := v0
		if v1 > mx {
			mx = v1
		}
		if v2 > mx {
			mx = v2
		}
		if v3 > mx {
			mx = v3
		}
		if mx < thresh && mx > 0 {
			v0 *= factor
			v1 *= factor
			v2 *= factor
			v3 *= factor
			sc++
		}
		d0[i], d1[i], d2[i], d3[i] = v0, v1, v2, v3
		sd[i] = sc
	}
}

// segEdgeLnL accumulates the weighted root log-likelihood over
// [lo, lo+n) into acc and returns it. The accumulator threads through
// the caller's segment loop so the summation order over a shard is one
// unbroken pattern sequence, exactly as the interleaved kernel summed.
func segEdgeLnL[T clvFloat](aclv, bclv []T, asc, bsc []int32, w []float64,
	pm *model.PMatrix, f *[4]float64, logSc float64, npad, lo, n int, acc float64) float64 {
	a0, a1, a2, a3 := lanes(aclv, npad, lo, n)
	b0l, b1l, b2l, b3l := lanes(bclv, npad, lo, n)
	m00, m01, m02, m03 := pm[0][0], pm[0][1], pm[0][2], pm[0][3]
	m10, m11, m12, m13 := pm[1][0], pm[1][1], pm[1][2], pm[1][3]
	m20, m21, m22, m23 := pm[2][0], pm[2][1], pm[2][2], pm[2][3]
	m30, m31, m32, m33 := pm[3][0], pm[3][1], pm[3][2], pm[3][3]
	f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
	a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
	b0l, b1l, b2l, b3l = b0l[:len(a0)], b1l[:len(a0)], b2l[:len(a0)], b3l[:len(a0)]
	wv := w[lo : lo+n]
	wv = wv[:len(a0)]
	sa := asc[lo : lo+n]
	sa = sa[:len(a0)]
	sb := bsc[lo : lo+n]
	sb = sb[:len(a0)]
	for i := range a0 {
		b0, b1, b2, b3 := float64(b0l[i]), float64(b1l[i]), float64(b2l[i]), float64(b3l[i])
		lkl := 0.0
		lkl += f0 * float64(a0[i]) * (m00*b0 + m01*b1 + m02*b2 + m03*b3)
		lkl += f1 * float64(a1[i]) * (m10*b0 + m11*b1 + m12*b2 + m13*b3)
		lkl += f2 * float64(a2[i]) * (m20*b0 + m21*b1 + m22*b2 + m23*b3)
		lkl += f3 * float64(a3[i]) * (m30*b0 + m31*b1 + m32*b2 + m33*b3)
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		acc += wv[i] * (math.Log(lkl) - float64(sa[i]+sb[i])*logSc)
	}
	return acc
}

// derivAcc carries the three Newton reduction accumulators through a
// shard's segment loop.
type derivAcc struct {
	d1, d2, lnL float64
}

// segDeriv accumulates the weighted first/second log-likelihood
// derivatives and the log-likelihood itself over [lo, lo+n).
func segDeriv[T clvFloat](aclv, bclv []T, asc, bsc []int32, w []float64,
	pm, dm, ddm *model.PMatrix, f *[4]float64, logSc float64, npad, lo, n int, acc derivAcc) derivAcc {
	a0, a1, a2, a3 := lanes(aclv, npad, lo, n)
	b0l, b1l, b2l, b3l := lanes(bclv, npad, lo, n)
	m00, m01, m02, m03 := pm[0][0], pm[0][1], pm[0][2], pm[0][3]
	m10, m11, m12, m13 := pm[1][0], pm[1][1], pm[1][2], pm[1][3]
	m20, m21, m22, m23 := pm[2][0], pm[2][1], pm[2][2], pm[2][3]
	m30, m31, m32, m33 := pm[3][0], pm[3][1], pm[3][2], pm[3][3]
	d00, d01, d02, d03 := dm[0][0], dm[0][1], dm[0][2], dm[0][3]
	d10, d11, d12, d13 := dm[1][0], dm[1][1], dm[1][2], dm[1][3]
	d20, d21, d22, d23 := dm[2][0], dm[2][1], dm[2][2], dm[2][3]
	d30, d31, d32, d33 := dm[3][0], dm[3][1], dm[3][2], dm[3][3]
	e00, e01, e02, e03 := ddm[0][0], ddm[0][1], ddm[0][2], ddm[0][3]
	e10, e11, e12, e13 := ddm[1][0], ddm[1][1], ddm[1][2], ddm[1][3]
	e20, e21, e22, e23 := ddm[2][0], ddm[2][1], ddm[2][2], ddm[2][3]
	e30, e31, e32, e33 := ddm[3][0], ddm[3][1], ddm[3][2], ddm[3][3]
	f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
	a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
	b0l, b1l, b2l, b3l = b0l[:len(a0)], b1l[:len(a0)], b2l[:len(a0)], b3l[:len(a0)]
	wv := w[lo : lo+n]
	wv = wv[:len(a0)]
	sa := asc[lo : lo+n]
	sa = sa[:len(a0)]
	sb := bsc[lo : lo+n]
	sb = sb[:len(a0)]
	for i := range a0 {
		b0, b1, b2, b3 := float64(b0l[i]), float64(b1l[i]), float64(b2l[i]), float64(b3l[i])
		fa0 := f0 * float64(a0[i])
		fa1 := f1 * float64(a1[i])
		fa2 := f2 * float64(a2[i])
		fa3 := f3 * float64(a3[i])
		var l, dl, ddl float64
		l += fa0 * (m00*b0 + m01*b1 + m02*b2 + m03*b3)
		dl += fa0 * (d00*b0 + d01*b1 + d02*b2 + d03*b3)
		ddl += fa0 * (e00*b0 + e01*b1 + e02*b2 + e03*b3)
		l += fa1 * (m10*b0 + m11*b1 + m12*b2 + m13*b3)
		dl += fa1 * (d10*b0 + d11*b1 + d12*b2 + d13*b3)
		ddl += fa1 * (e10*b0 + e11*b1 + e12*b2 + e13*b3)
		l += fa2 * (m20*b0 + m21*b1 + m22*b2 + m23*b3)
		dl += fa2 * (d20*b0 + d21*b1 + d22*b2 + d23*b3)
		ddl += fa2 * (e20*b0 + e21*b1 + e22*b2 + e23*b3)
		l += fa3 * (m30*b0 + m31*b1 + m32*b2 + m33*b3)
		dl += fa3 * (d30*b0 + d31*b1 + d32*b2 + d33*b3)
		ddl += fa3 * (e30*b0 + e31*b1 + e32*b2 + e33*b3)
		if l <= 0 {
			l = math.SmallestNonzeroFloat64
		}
		w := wv[i]
		r := dl / l
		acc.d1 += w * r
		acc.d2 += w * (ddl/l - r*r)
		acc.lnL += w * (math.Log(l) - float64(sa[i]+sb[i])*logSc)
	}
	return acc
}

// gradAcc carries the two gradient reduction accumulators through a
// shard's segment loop.
type gradAcc struct {
	d1, d2 float64
}

// segDerivGrad accumulates the weighted first/second log-likelihood
// derivatives over [lo, lo+n): segDeriv minus the log-likelihood value.
// The scale counts cancel in the dl/l and ddl/l ratios and the
// per-pattern math.Log exists only for the likelihood value itself, so
// the gradient-only reduction loads no scale vectors and calls no
// transcendentals — that is what makes the all-branches gradient pass
// cheap enough to beat the sweep. d1/d2 follow the exact arithmetic of
// segDeriv in the same order, so they are bit-identical to the values
// the full derivative kernel produces.
func segDerivGrad[T clvFloat](aclv, bclv []T, w []float64,
	pm, dm, ddm *model.PMatrix, f *[4]float64, npad, lo, n int, acc gradAcc) gradAcc {
	a0, a1, a2, a3 := lanes(aclv, npad, lo, n)
	b0l, b1l, b2l, b3l := lanes(bclv, npad, lo, n)
	m00, m01, m02, m03 := pm[0][0], pm[0][1], pm[0][2], pm[0][3]
	m10, m11, m12, m13 := pm[1][0], pm[1][1], pm[1][2], pm[1][3]
	m20, m21, m22, m23 := pm[2][0], pm[2][1], pm[2][2], pm[2][3]
	m30, m31, m32, m33 := pm[3][0], pm[3][1], pm[3][2], pm[3][3]
	d00, d01, d02, d03 := dm[0][0], dm[0][1], dm[0][2], dm[0][3]
	d10, d11, d12, d13 := dm[1][0], dm[1][1], dm[1][2], dm[1][3]
	d20, d21, d22, d23 := dm[2][0], dm[2][1], dm[2][2], dm[2][3]
	d30, d31, d32, d33 := dm[3][0], dm[3][1], dm[3][2], dm[3][3]
	e00, e01, e02, e03 := ddm[0][0], ddm[0][1], ddm[0][2], ddm[0][3]
	e10, e11, e12, e13 := ddm[1][0], ddm[1][1], ddm[1][2], ddm[1][3]
	e20, e21, e22, e23 := ddm[2][0], ddm[2][1], ddm[2][2], ddm[2][3]
	e30, e31, e32, e33 := ddm[3][0], ddm[3][1], ddm[3][2], ddm[3][3]
	f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
	a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
	b0l, b1l, b2l, b3l = b0l[:len(a0)], b1l[:len(a0)], b2l[:len(a0)], b3l[:len(a0)]
	wv := w[lo : lo+n]
	wv = wv[:len(a0)]
	for i := range a0 {
		b0, b1, b2, b3 := float64(b0l[i]), float64(b1l[i]), float64(b2l[i]), float64(b3l[i])
		fa0 := f0 * float64(a0[i])
		fa1 := f1 * float64(a1[i])
		fa2 := f2 * float64(a2[i])
		fa3 := f3 * float64(a3[i])
		var l, dl, ddl float64
		l += fa0 * (m00*b0 + m01*b1 + m02*b2 + m03*b3)
		dl += fa0 * (d00*b0 + d01*b1 + d02*b2 + d03*b3)
		ddl += fa0 * (e00*b0 + e01*b1 + e02*b2 + e03*b3)
		l += fa1 * (m10*b0 + m11*b1 + m12*b2 + m13*b3)
		dl += fa1 * (d10*b0 + d11*b1 + d12*b2 + d13*b3)
		ddl += fa1 * (e10*b0 + e11*b1 + e12*b2 + e13*b3)
		l += fa2 * (m20*b0 + m21*b1 + m22*b2 + m23*b3)
		dl += fa2 * (d20*b0 + d21*b1 + d22*b2 + d23*b3)
		ddl += fa2 * (e20*b0 + e21*b1 + e22*b2 + e23*b3)
		l += fa3 * (m30*b0 + m31*b1 + m32*b2 + m33*b3)
		dl += fa3 * (d30*b0 + d31*b1 + d32*b2 + d33*b3)
		ddl += fa3 * (e30*b0 + e31*b1 + e32*b2 + e33*b3)
		if l <= 0 {
			l = math.SmallestNonzeroFloat64
		}
		w := wv[i]
		r := dl / l
		acc.d1 += w * r
		acc.d2 += w * (ddl/l - r*r)
	}
	return acc
}

// segSiteLnL writes the per-pattern (unweighted) log-likelihoods over
// [lo, lo+n) into out at each pattern's original (pre-permutation)
// index, given by orig.
func segSiteLnL[T clvFloat](aclv, bclv []T, asc, bsc []int32, orig []int, out []float64,
	pm *model.PMatrix, f *[4]float64, logSc float64, npad, lo, n int) {
	a0, a1, a2, a3 := lanes(aclv, npad, lo, n)
	b0l, b1l, b2l, b3l := lanes(bclv, npad, lo, n)
	m00, m01, m02, m03 := pm[0][0], pm[0][1], pm[0][2], pm[0][3]
	m10, m11, m12, m13 := pm[1][0], pm[1][1], pm[1][2], pm[1][3]
	m20, m21, m22, m23 := pm[2][0], pm[2][1], pm[2][2], pm[2][3]
	m30, m31, m32, m33 := pm[3][0], pm[3][1], pm[3][2], pm[3][3]
	f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
	a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
	b0l, b1l, b2l, b3l = b0l[:len(a0)], b1l[:len(a0)], b2l[:len(a0)], b3l[:len(a0)]
	og := orig[lo : lo+n]
	og = og[:len(a0)]
	sa := asc[lo : lo+n]
	sa = sa[:len(a0)]
	sb := bsc[lo : lo+n]
	sb = sb[:len(a0)]
	for i := range a0 {
		b0, b1, b2, b3 := float64(b0l[i]), float64(b1l[i]), float64(b2l[i]), float64(b3l[i])
		lkl := 0.0
		lkl += f0 * float64(a0[i]) * (m00*b0 + m01*b1 + m02*b2 + m03*b3)
		lkl += f1 * float64(a1[i]) * (m10*b0 + m11*b1 + m12*b2 + m13*b3)
		lkl += f2 * float64(a2[i]) * (m20*b0 + m21*b1 + m22*b2 + m23*b3)
		lkl += f3 * float64(a3[i]) * (m30*b0 + m31*b1 + m32*b2 + m33*b3)
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		out[og[i]] = math.Log(lkl) - float64(sa[i]+sb[i])*logSc
	}
}

// addScale adds src scale counts into dst over [lo, lo+n) (subsequent
// combines accumulate the children's scaling events).
func addScale(dst, src []int32, lo, n int) {
	d := dst[lo : lo+n]
	s := src[lo : lo+n]
	s = s[:len(d)]
	for i := range d {
		d[i] += s[i]
	}
}
