// Package difftest is the differential cross-validation harness for
// likelihood.Engine backends: it runs any two registered engines over
// seeded randomized data sets, models, trees, and branch lengths, and
// asserts that they agree on total log-likelihoods, per-site
// log-likelihoods, and Newton-optimized branch lengths within a
// documented tolerance.
//
// This is the machine-checked half of the Engine interface contract
// (DESIGN.md §5g): review establishes that a new backend implements the
// right algorithm; the harness establishes that its numbers match the
// reference implementation on thousands of randomized inputs, including
// rate heterogeneity, ambiguity codes, every substitution model, and
// deep-rescale geometries. Every future backend (low-memory, FFI,
// GPU) gets correctness enforcement by adding one table line, not a
// bespoke test suite.
//
// Tolerances are explicit and precision-dependent: two float64 engines
// differ only by floating-point summation order, so they must agree
// tightly (though not bitwise — the harness compares across genuinely
// different computation orders); float32 engines inherit the documented
// Float32*Tol contract from the likelihood package.
package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/likelihood"
	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Tolerance bounds the allowed disagreement between the two engines.
// Each comparison passes when the difference is within the absolute
// bound OR the relative bound scaled by the reference magnitude.
type Tolerance struct {
	// LnLRel/LnLAbs bound total log-likelihood disagreement on the
	// plain (fixed-branch-length) evaluation: pure summation-order
	// noise, so tight.
	LnLRel, LnLAbs float64
	// SiteRel/SiteAbs bound per-site (per-pattern) log-likelihoods.
	SiteRel, SiteAbs float64
	// OptRel/OptAbs bound the post-optimization log-likelihood. Looser
	// than LnL*: Newton stops within newtonTol of a stationary point
	// from either side, so the engines return slightly different — both
	// valid — trees whose likelihoods differ by more than evaluation
	// noise on the *same* tree would.
	OptRel, OptAbs float64
	// LenRel/LenAbs bound optimized branch lengths.
	LenRel, LenAbs float64
}

// DefaultTolerance returns the documented tolerance for comparing two
// engines at the given CLV precision.
//
// Float64: both engines accumulate in float64 and walk the same Newton
// policy, so log-likelihoods agree to ~1e-10 relative and the bounds
// below carry an order of magnitude of slack. Branch lengths get a
// looser bound than likelihoods: Newton stops within newtonTol of a
// stationary point from either side, and near-flat likelihood surfaces
// amplify last-iterate differences without changing the likelihood.
//
// Float32: the likelihood package's Float32*Tol contract, which bounds
// a float32 engine against the float64 truth; two float32-mode engines
// sit within that envelope of each other as well.
func DefaultTolerance(prec likelihood.Precision) Tolerance {
	if prec == likelihood.Float32 {
		return Tolerance{
			LnLRel: likelihood.Float32LnLRelTol, LnLAbs: likelihood.Float32LnLAbsTol,
			SiteRel: likelihood.Float32LnLRelTol, SiteAbs: likelihood.Float32LnLAbsTol,
			OptRel: likelihood.Float32LnLRelTol, OptAbs: likelihood.Float32LnLAbsTol,
			LenRel: likelihood.Float32LenRelTol, LenAbs: likelihood.Float32LenAbsTol,
		}
	}
	return Tolerance{
		LnLRel: 1e-9, LnLAbs: 1e-7,
		SiteRel: 1e-8, SiteAbs: 1e-7,
		OptRel: 1e-7, OptAbs: 1e-4,
		LenRel: 5e-4, LenAbs: 1e-5,
	}
}

// Options configure one harness run.
type Options struct {
	// EngineA and EngineB name the two registered backends to compare
	// (empty selects likelihood.DefaultEngine).
	EngineA, EngineB string
	// Precision is the CLV precision both engines are built at.
	Precision likelihood.Precision
	// Cases is the number of seeded random cases (default 50).
	Cases int
	// Seed drives case generation; case i uses Seed+i, so any failing
	// case is reproducible in isolation.
	Seed int64
	// MinTaxa/MaxTaxa bound the random taxon count (defaults 4..14).
	MinTaxa, MaxTaxa int
	// MinSites/MaxSites bound the random alignment length
	// (defaults 60..240).
	MinSites, MaxSites int
	// Passes is the branch-smoothing pass count (default 3).
	Passes int
	// Tol overrides the tolerance; the zero value selects
	// DefaultTolerance(Precision).
	Tol Tolerance
}

func (o Options) withDefaults() Options {
	if o.Cases <= 0 {
		o.Cases = 50
	}
	if o.MinTaxa < 4 {
		o.MinTaxa = 4
	}
	if o.MaxTaxa < o.MinTaxa {
		o.MaxTaxa = o.MinTaxa + 10
	}
	if o.MinSites <= 0 {
		o.MinSites = 60
	}
	if o.MaxSites < o.MinSites {
		o.MaxSites = o.MinSites + 180
	}
	if o.Passes <= 0 {
		o.Passes = 3
	}
	if o.Tol == (Tolerance{}) {
		o.Tol = DefaultTolerance(o.Precision)
	}
	return o
}

// Report summarizes a harness run: the worst observed disagreements and
// every tolerance violation, one line each, seed included.
type Report struct {
	// Cases is the number of cases actually run.
	Cases int
	// MaxLnLDiff, MaxSiteDiff, MaxLenDiff are the largest absolute
	// disagreements observed across all cases (violating or not).
	MaxLnLDiff, MaxSiteDiff, MaxLenDiff float64
	// Failures lists every tolerance violation.
	Failures []string
}

// Ok reports whether the run had no tolerance violations.
func (r Report) Ok() bool { return len(r.Failures) == 0 }

// within reports agreement under the combined relative/absolute bound.
func within(got, want, rel, abs float64) bool {
	d := math.Abs(got - want)
	return d <= abs || d <= rel*math.Abs(want)
}

// Run executes the harness and returns the report. A non-nil error means
// the harness itself could not run (unknown engine name, construction
// failure); tolerance violations are reported in Report.Failures, not as
// errors.
func Run(opt Options) (Report, error) {
	opt = opt.withDefaults()
	if _, err := likelihood.ParseEngine(opt.EngineA); err != nil {
		return Report{}, err
	}
	if _, err := likelihood.ParseEngine(opt.EngineB); err != nil {
		return Report{}, err
	}
	var rep Report
	for i := 0; i < opt.Cases; i++ {
		seed := opt.Seed + int64(i)
		if err := runCase(opt, seed, &rep); err != nil {
			return rep, fmt.Errorf("difftest: case seed=%d: %w", seed, err)
		}
		rep.Cases++
	}
	return rep, nil
}

// runCase generates one random dataset/model/tree and compares the two
// engines on it.
func runCase(opt Options, seed int64, rep *Report) error {
	rng := rand.New(rand.NewSource(seed))
	taxa := opt.MinTaxa + rng.Intn(opt.MaxTaxa-opt.MinTaxa+1)
	sites := opt.MinSites + rng.Intn(opt.MaxSites-opt.MinSites+1)

	m, p, tr, err := randomCase(rng, taxa, sites)
	if err != nil {
		return err
	}
	ea, err := likelihood.NewEngine(opt.EngineA, m, p, likelihood.EngineOptions{Precision: opt.Precision})
	if err != nil {
		return err
	}
	defer likelihood.CloseEngine(ea)
	eb, err := likelihood.NewEngine(opt.EngineB, m, p, likelihood.EngineOptions{Precision: opt.Precision})
	if err != nil {
		return err
	}
	defer likelihood.CloseEngine(eb)

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("seed=%d taxa=%d sites=%d model=%s: %s",
				seed, taxa, sites, m.Name(), fmt.Sprintf(format, args...)))
	}

	// Plain evaluation.
	ta, tb := tr.Clone(), tr.Clone()
	la, err := ea.LogLikelihood(ta)
	if err != nil {
		return err
	}
	lb, err := eb.LogLikelihood(tb)
	if err != nil {
		return err
	}
	if d := math.Abs(la - lb); d > rep.MaxLnLDiff {
		rep.MaxLnLDiff = d
	}
	if !within(lb, la, opt.Tol.LnLRel, opt.Tol.LnLAbs) {
		fail("lnL %.12g (%s) vs %.12g (%s), diff %.3g",
			la, opt.EngineA, lb, opt.EngineB, math.Abs(la-lb))
	}

	// Per-site log-likelihoods. Both slices may be engine-owned; compare
	// before any further evaluation on either engine.
	sa, err := ea.SiteLogLikelihoods(ta)
	if err != nil {
		return err
	}
	sa = append([]float64(nil), sa...)
	sb, err := eb.SiteLogLikelihoods(tb)
	if err != nil {
		return err
	}
	if len(sa) != len(sb) {
		fail("site lnL length %d vs %d", len(sa), len(sb))
	} else {
		for s := range sa {
			if d := math.Abs(sa[s] - sb[s]); d > rep.MaxSiteDiff {
				rep.MaxSiteDiff = d
			}
			if !within(sb[s], sa[s], opt.Tol.SiteRel, opt.Tol.SiteAbs) {
				fail("site %d lnL %.12g vs %.12g", s, sa[s], sb[s])
				break
			}
		}
	}

	// Branch optimization: same starting tree, same pass budget; final
	// likelihoods and every optimized length must agree.
	oa, err := ea.OptimizeBranches(ta, likelihood.OptOptions{Passes: opt.Passes})
	if err != nil {
		return err
	}
	ob, err := eb.OptimizeBranches(tb, likelihood.OptOptions{Passes: opt.Passes})
	if err != nil {
		return err
	}
	if d := math.Abs(oa - ob); d > rep.MaxLnLDiff {
		rep.MaxLnLDiff = d
	}
	if !within(ob, oa, opt.Tol.OptRel, opt.Tol.OptAbs) {
		fail("optimized lnL %.12g vs %.12g, diff %.3g", oa, ob, math.Abs(oa-ob))
	}
	ea2, eb2 := ta.Edges(), tb.Edges()
	if len(ea2) != len(eb2) {
		fail("edge count %d vs %d after optimization", len(ea2), len(eb2))
		return nil
	}
	for i := range ea2 {
		if ea2[i].A.ID != eb2[i].A.ID || ea2[i].B.ID != eb2[i].B.ID {
			fail("edge %d identity diverged", i)
			return nil
		}
		ga, gb := ea2[i].Length(), eb2[i].Length()
		if d := math.Abs(ga - gb); d > rep.MaxLenDiff {
			rep.MaxLenDiff = d
		}
		if !within(gb, ga, opt.Tol.LenRel, opt.Tol.LenAbs) {
			fail("edge %d-%d length %.9g vs %.9g", ea2[i].A.ID, ea2[i].B.ID, ga, gb)
		}
	}
	return nil
}

// randomCase builds one random dataset, substitution model, and starting
// tree. Sequences are site-correlated across taxa (so trees are
// informative) with a sprinkle of ambiguity codes; per-site rates are
// drawn from a random small class set about half the time; the model
// cycles through F84, JC69, HKY85, and GTR with randomized parameters.
func randomCase(rng *rand.Rand, taxa, sites int) (model.Model, *seq.Patterns, *tree.Tree, error) {
	const bases = "ACGT"
	const ambig = "NRY-"
	rows := make([]string, taxa)
	buf := make([]byte, sites)
	for i := range rows {
		for s := range buf {
			switch {
			case i > 0 && rng.Float64() < 0.7:
				buf[s] = rows[i-1][s]
			case rng.Float64() < 0.02:
				buf[s] = ambig[rng.Intn(len(ambig))]
			default:
				buf[s] = bases[rng.Intn(4)]
			}
		}
		rows[i] = string(buf)
	}
	names := make([]string, taxa)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	a := seq.NewAlignment(taxa)
	for i, r := range rows {
		if err := a.Add(names[i], r); err != nil {
			return nil, nil, nil, err
		}
	}
	var rates []float64
	if rng.Float64() < 0.5 {
		classes := []float64{0.2 + rng.Float64(), 1.0, 1.0 + 2*rng.Float64()}
		rates = make([]float64, sites)
		for s := range rates {
			rates[s] = classes[rng.Intn(len(classes))]
		}
	}
	p, err := seq.Compress(a, seq.CompressOptions{Rates: rates})
	if err != nil {
		return nil, nil, nil, err
	}

	freqs := seq.EmpiricalFreqsPatterns(p)
	var m model.Model
	switch rng.Intn(4) {
	case 0:
		m, err = model.NewF84(freqs, 1.5+2.5*rng.Float64())
	case 1:
		m = model.NewJC69()
	case 2:
		m, err = model.NewHKY85(freqs, 1.5+2.5*rng.Float64())
	default:
		m, err = model.NewGTR(freqs, model.GTRRates{
			AC: 0.5 + rng.Float64(), AG: 1 + 2*rng.Float64(), AT: 0.5 + rng.Float64(),
			CG: 0.5 + rng.Float64(), CT: 1 + 2*rng.Float64(), GT: 0.5 + rng.Float64(),
		})
	}
	if err != nil {
		return nil, nil, nil, err
	}

	tr, err := tree.RandomTree(names, rng, 0.03+0.4*rng.Float64())
	if err != nil {
		return nil, nil, nil, err
	}
	return m, p, tr, nil
}
