package difftest

import (
	"testing"

	"repro/internal/likelihood"
)

// TestDifferentialCachedVsReference is the acceptance gate for the
// Engine seam: the CLV-cached production engine and the direct
// post-order reference engine must agree on total log-likelihoods,
// per-site log-likelihoods, and Newton-optimized branch lengths across
// 50+ seeded random tree/model cases — in both CLV precisions.
func TestDifferentialCachedVsReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		prec likelihood.Precision
	}{
		{"float64", likelihood.Float64},
		{"float32", likelihood.Float32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(Options{
				EngineA:   "cached",
				EngineB:   "reference",
				Precision: tc.prec,
				Cases:     55,
				Seed:      1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cases < 50 {
				t.Fatalf("only %d cases ran, want >= 50", rep.Cases)
			}
			for _, f := range rep.Failures {
				t.Error(f)
			}
			t.Logf("%s: %d cases, max diffs: lnL %.3g, site %.3g, len %.3g",
				tc.name, rep.Cases, rep.MaxLnLDiff, rep.MaxSiteDiff, rep.MaxLenDiff)
		})
	}
}

// TestDifferentialSelf sanity-checks the harness itself: an engine
// compared against itself must agree to (better than) any tolerance, and
// the case generator must be deterministic for a fixed seed.
func TestDifferentialSelf(t *testing.T) {
	rep, err := Run(Options{
		EngineA: "reference",
		EngineB: "reference",
		Cases:   8,
		Seed:    77,
		Tol:     Tolerance{LnLRel: 1e-14, LnLAbs: 1e-12, SiteRel: 1e-14, SiteAbs: 1e-12, OptRel: 1e-14, OptAbs: 1e-12, LenRel: 1e-14, LenAbs: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
}

// TestDifferentialUnknownEngine: harness errors (not failures) on
// unregistered backend names.
func TestDifferentialUnknownEngine(t *testing.T) {
	if _, err := Run(Options{EngineA: "no-such-engine", Cases: 1}); err == nil {
		t.Fatal("unknown engine name did not error")
	}
}

// TestDifferentialThreadedCached: the harness also holds when the cached
// engine shards its kernels — threading must not change results (the
// bit-identity contract) and therefore must not change agreement with
// the reference.
func TestDifferentialThreadedCached(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Register-free path: compare cached (threads handled via
	// EngineOptions in the factory) against reference by building the
	// harness options only — the factory applies Threads.
	rep, err := Run(Options{
		EngineA:   "cached",
		EngineB:   "reference",
		Precision: likelihood.Float64,
		Cases:     10,
		Seed:      4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
}
