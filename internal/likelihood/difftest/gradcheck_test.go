package difftest

import (
	"testing"

	"repro/internal/likelihood"
)

// TestDifferentialGradientCheck is the finite-difference acceptance gate
// for the linear-time gradient: across the seeded case matrix, every
// branch's analytic D1/D2 from the cached engine must match central
// differences of the reference engine's log-likelihood — in both CLV
// precisions, within the documented GradTolerance.
func TestDifferentialGradientCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		prec likelihood.Precision
	}{
		{"float64", likelihood.Float64},
		{"float32", likelihood.Float32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := GradientCheck(Options{
				EngineA:   "cached",
				Precision: tc.prec,
				Cases:     30,
				Seed:      2000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cases < 30 || rep.Edges == 0 {
				t.Fatalf("%d cases / %d edges ran", rep.Cases, rep.Edges)
			}
			for _, f := range rep.Failures {
				t.Error(f)
			}
			t.Logf("%s: %d cases, %d edges, max diffs: d1 %.3g, d2 %.3g",
				tc.name, rep.Cases, rep.Edges, rep.MaxD1Diff, rep.MaxD2Diff)
		})
	}
}

// TestDifferentialGradientCheckNoCapability: the check errors (rather
// than silently passing) on an engine without the GradientSmoother
// capability.
func TestDifferentialGradientCheckNoCapability(t *testing.T) {
	if _, err := GradientCheck(Options{EngineA: "reference", Cases: 1}); err == nil {
		t.Fatal("gradient check on a gradient-less engine did not error")
	}
}
