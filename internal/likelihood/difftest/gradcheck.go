package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// Finite-difference cross-validation of the analytic all-branches
// gradient: for every branch of every seeded case, the D1/D2 an engine's
// GradientSmoother capability reports must match central differences of
// the reference engine's log-likelihood. This checks the gradient
// kernel against a computation that shares nothing with it — the
// reference engine recomputes from scratch in plain post-order, and
// differentiation happens numerically rather than via the dP/dz
// matrices — so an error in the derivative coefficient tables, the
// rate-class weighting, or the up-partial recursion cannot cancel out.

// GradTolerance bounds analytic-vs-finite-difference disagreement for
// the first and second derivatives, in the combined relative/absolute
// form used by Tolerance.
type GradTolerance struct {
	D1Rel, D1Abs float64
	D2Rel, D2Abs float64
}

// DefaultGradTolerance returns the documented tolerance for checking an
// engine's analytic gradient at the given CLV precision against float64
// central differences.
//
// The bounds are set by the finite differences, not the analytic side:
// with relative steps of fdD1Step/fdD2Step the truncation error is
// ~h²·|d³L/dz³|/6 and the subtraction cancels ~h⁻¹ (d1) or ~h⁻² (d2)
// of float64's headroom, which on |lnL| up to ~10⁴ leaves roughly four
// significant digits for d1 and two for d2. Float32 engines carry the
// additional CLV quantization of the analytic values themselves
// (Float32LnLRelTol-scale noise amplified by the same cancellation), so
// their bounds are wider.
func DefaultGradTolerance(prec likelihood.Precision) GradTolerance {
	if prec == likelihood.Float32 {
		return GradTolerance{
			D1Rel: 5e-2, D1Abs: 5.0,
			D2Rel: 1e-1, D2Abs: 50.0,
		}
	}
	return GradTolerance{
		D1Rel: 1e-3, D1Abs: 5e-2,
		D2Rel: 1e-2, D2Abs: 2.0,
	}
}

const (
	// fdMinLen lifts branch lengths off the kernel clamp before
	// differencing, so the probes z±h stay inside the smooth regime
	// where d/dz is well defined.
	fdMinLen = 5e-3
	// fdD1Step and fdD2Step are the relative central-difference steps.
	// The d2 step is wider: the second difference divides by h², so its
	// rounding error grows twice as fast as truncation shrinks.
	fdD1Step = 1e-4
	fdD2Step = 2e-3
)

// GradReport summarizes a GradientCheck run.
type GradReport struct {
	// Cases is the number of cases run; Edges the total branches checked.
	Cases, Edges int
	// MaxD1Diff/MaxD2Diff are the largest absolute analytic-vs-FD
	// disagreements observed (violating or not).
	MaxD1Diff, MaxD2Diff float64
	// Failures lists every tolerance violation, one line each.
	Failures []string
}

// Ok reports whether the run had no tolerance violations.
func (r GradReport) Ok() bool { return len(r.Failures) == 0 }

// GradientCheck runs the finite-difference gradient check over the same
// seeded case matrix as Run: EngineA (which must have the
// GradientSmoother capability) computes the analytic gradient at
// opt.Precision, and every entry is compared against central
// differences of the float64 reference engine's log-likelihood. Options
// are interpreted as in Run; Passes and EngineB are unused.
func GradientCheck(opt Options) (GradReport, error) {
	opt = opt.withDefaults()
	if _, err := likelihood.ParseEngine(opt.EngineA); err != nil {
		return GradReport{}, err
	}
	gtol := DefaultGradTolerance(opt.Precision)
	var rep GradReport
	for i := 0; i < opt.Cases; i++ {
		seed := opt.Seed + int64(i)
		if err := runGradCase(opt, gtol, seed, &rep); err != nil {
			return rep, fmt.Errorf("difftest: gradient case seed=%d: %w", seed, err)
		}
		rep.Cases++
	}
	return rep, nil
}

func runGradCase(opt Options, gtol GradTolerance, seed int64, rep *GradReport) error {
	rng := rand.New(rand.NewSource(seed))
	taxa := opt.MinTaxa + rng.Intn(opt.MaxTaxa-opt.MinTaxa+1)
	sites := opt.MinSites + rng.Intn(opt.MaxSites-opt.MinSites+1)
	m, p, tr, err := randomCase(rng, taxa, sites)
	if err != nil {
		return err
	}
	for _, ed := range tr.Edges() {
		if ed.Length() < fdMinLen {
			tree.SetLen(ed.A, ed.B, fdMinLen)
		}
	}

	eng, err := likelihood.NewEngine(opt.EngineA, m, p, likelihood.EngineOptions{Precision: opt.Precision})
	if err != nil {
		return err
	}
	defer likelihood.CloseEngine(eng)
	grads, _, ok, err := likelihood.BranchGradientsOf(eng, tr, nil)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("engine %q has no GradientSmoother capability", opt.EngineA)
	}

	ref, err := likelihood.NewEngine("reference", m, p, likelihood.EngineOptions{Precision: likelihood.Float64})
	if err != nil {
		return err
	}
	defer likelihood.CloseEngine(ref)
	tb := tr.Clone()
	base, err := ref.LogLikelihood(tb)
	if err != nil {
		return err
	}

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("seed=%d taxa=%d sites=%d model=%s: %s",
				seed, taxa, sites, m.Name(), fmt.Sprintf(format, args...)))
	}
	at := func(a, b *tree.Node, z float64) (float64, error) {
		tree.SetLen(a, b, z)
		return ref.LogLikelihood(tb)
	}
	for _, g := range grads {
		a, b := tb.Nodes[g.A.ID], tb.Nodes[g.B.ID]
		z := g.Z

		h := fdD1Step * z
		lp, err := at(a, b, z+h)
		if err != nil {
			return err
		}
		lm, err := at(a, b, z-h)
		if err != nil {
			return err
		}
		d1fd := (lp - lm) / (2 * h)

		h2 := fdD2Step * z
		lp2, err := at(a, b, z+h2)
		if err != nil {
			return err
		}
		lm2, err := at(a, b, z-h2)
		if err != nil {
			return err
		}
		d2fd := (lp2 - 2*base + lm2) / (h2 * h2)
		tree.SetLen(a, b, z)

		rep.Edges++
		if d := math.Abs(g.D1 - d1fd); d > rep.MaxD1Diff {
			rep.MaxD1Diff = d
		}
		if d := math.Abs(g.D2 - d2fd); d > rep.MaxD2Diff {
			rep.MaxD2Diff = d
		}
		if !within(g.D1, d1fd, gtol.D1Rel, gtol.D1Abs) {
			fail("edge %d-%d z=%.6g d1 analytic %.8g vs FD %.8g, diff %.3g",
				g.A.ID, g.B.ID, z, g.D1, d1fd, math.Abs(g.D1-d1fd))
		}
		if !within(g.D2, d2fd, gtol.D2Rel, gtol.D2Abs) {
			fail("edge %d-%d z=%.6g d2 analytic %.8g vs FD %.8g, diff %.3g",
				g.A.ID, g.B.ID, z, g.D2, d2fd, math.Abs(g.D2-d2fd))
		}
	}
	return nil
}
