package likelihood

import (
	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Engine is the likelihood-evaluation seam: everything the search,
// worker, and rate-estimation layers need from a backend. The paper
// treats likelihood evaluation as an opaque work unit handed to workers;
// this interface is that boundary in code, so genuinely different
// algorithms (the CLV-cached production engine, the direct-recomputation
// reference engine, future low-memory or FFI backends) are drop-in
// replacements whose agreement is machine-checked by the differential
// harness in internal/likelihood/difftest.
//
// The interface is deliberately minimal: evaluation, branch smoothing,
// and insertion scoring. Everything else — kernel threading, CLV
// precision, cache statistics, explicit invalidation, op counting — is a
// capability expressed as a small optional sub-interface (Threader,
// PrecisionReporter, StatsReporter, Invalidator, OpsReporter, Closer)
// that minimal engines simply do not implement. Callers reach
// capabilities through the package helpers (SetEngineThreads, StatsOf,
// ...) which no-op or return zero values on engines without them.
//
// Implementations are not safe for concurrent use; each worker owns one.
type Engine interface {
	// Model returns the engine's substitution model.
	Model() model.Model
	// Patterns returns the engine's compressed data set.
	Patterns() *seq.Patterns

	// LogLikelihood evaluates the tree's log-likelihood without changing
	// any branch length. The tree must cover exactly the engine's taxa
	// and contain at least two leaves (ErrTreeMismatch otherwise).
	LogLikelihood(t *tree.Tree) (float64, error)
	// SiteLogLikelihoods returns the per-pattern log-likelihoods of the
	// tree (weights not applied) in the original pattern order of
	// Patterns(). The returned slice may be owned by the engine and
	// overwritten by the next call; callers that retain it must copy.
	SiteLogLikelihoods(t *tree.Tree) ([]float64, error)

	// OptimizeBranches optimizes branch lengths in place and returns the
	// final log-likelihood. With OptOptions.Around/Centers set, only
	// nearby branches are optimized but the returned value is still the
	// full-tree log-likelihood.
	OptimizeBranches(t *tree.Tree, opt OptOptions) (float64, error)
	// OptimizeEdge optimizes a single edge's branch length in place and
	// returns the resulting full-tree log-likelihood. The edge's
	// endpoints must be neighbors (ErrEdgeNotFound otherwise).
	OptimizeEdge(t *tree.Tree, ed tree.Edge) (float64, error)

	// NewInsertScorer prepares scoring of candidate insertions of taxon
	// into base. The taxon must be covered by the data set
	// (ErrTaxonOutsideData) and absent from base (ErrTaxonInTree). The
	// base tree must not be mutated between Score calls; only the most
	// recently created scorer of an engine may be used.
	NewInsertScorer(base *tree.Tree, taxon int) (InsertScorer, error)
}

// InsertScorer scores candidate insertions of one taxon into one base
// tree, bound to the engine that created it (see Engine.NewInsertScorer).
type InsertScorer interface {
	// Score evaluates inserting the taxon on edge ed of the base tree,
	// mirroring tree.InsertLeaf's starting geometry and Newton-optimizing
	// the three junction branches for the given number of passes
	// (minimum 1). The base tree is not modified. The edge must exist in
	// the base tree (ErrEdgeNotFound otherwise).
	Score(ed tree.Edge, passes int) (InsertScore, error)
}

// Threader is the kernel-threading capability: engines that can fan
// their pattern-dimension kernels out over a goroutine pool. The
// contract is strict determinism — results bit-identical at any count.
type Threader interface {
	// SetThreads sizes the kernel pool; n <= 1 restores single-threaded
	// operation. Must not be called during an evaluation.
	SetThreads(n int)
	// Threads reports the configured kernel thread count.
	Threads() int
}

// Closer is implemented by engines holding resources (goroutine pools,
// mapped memory) that should be released when the engine is discarded.
type Closer interface {
	// Close releases the engine's resources; it must be idempotent.
	Close()
}

// PrecisionReporter is implemented by engines whose CLV storage format
// is selectable; Precision reports the active format.
type PrecisionReporter interface {
	Precision() Precision
}

// StatsReporter is the cache/instrumentation capability.
type StatsReporter interface {
	// Stats returns the counters since the last ResetStats.
	Stats() EngineStats
	// ResetStats zeroes the counters and returns the previous values.
	ResetStats() EngineStats
}

// OpsReporter is the work-unit accounting capability consumed by the
// cluster simulator's cost model.
type OpsReporter interface {
	// Ops returns the cumulative pattern-level work counter.
	Ops() uint64
	// ResetOps zeroes the work counter and returns the previous value.
	ResetOps() uint64
}

// GradientSmoother is the linear-time all-branches gradient capability
// (Ji et al., "Gradients do grow on trees"): one post-order pass over
// down-partials, one pre-order pass over up-partials, and a per-edge
// reduction yield the derivative of the total log-likelihood with
// respect to every branch length in O(branches) kernel work. Engines
// with this capability honor OptOptions.Mode == SmoothGradient in
// OptimizeBranches; engines without it sweep sequentially regardless.
type GradientSmoother interface {
	// BranchGradients appends one entry per branch of t to dst — the
	// edge, its current length, and ∂lnL/∂z with the diagonal Hessian
	// term ∂²lnL/∂z², evaluated at the current lengths — and returns
	// the extended slice plus the tree's log-likelihood. The tree is
	// not modified.
	BranchGradients(t *tree.Tree, dst []BranchGrad) ([]BranchGrad, float64, error)
}

// Invalidator is the explicit cache-invalidation capability, for
// callers that mutate branch lengths behind the tree package's back.
type Invalidator interface {
	// InvalidateAll marks every cached vector stale.
	InvalidateAll()
	// InvalidateEdge marks stale every cached vector that depends on the
	// length of edge (a, b).
	InvalidateEdge(a, b *tree.Node)
}

// Capability helpers: callers that hold a plain Engine use these to
// exercise optional capabilities without type-asserting at every site.
// Each is a no-op (or returns a zero value) when the engine lacks the
// capability, so minimal backends work everywhere the cached one does.

// SetEngineThreads sets the kernel thread count when the engine supports
// threading and reports whether it did.
func SetEngineThreads(e Engine, n int) bool {
	if t, ok := e.(Threader); ok {
		t.SetThreads(n)
		return true
	}
	return false
}

// EngineThreads reports the engine's kernel thread count (1 when the
// engine does not thread).
func EngineThreads(e Engine) int {
	if t, ok := e.(Threader); ok {
		return t.Threads()
	}
	return 1
}

// CloseEngine releases the engine's resources when it holds any.
func CloseEngine(e Engine) {
	if c, ok := e.(Closer); ok {
		c.Close()
	}
}

// PrecisionOf reports the engine's CLV precision (Float64 when the
// engine does not expose one).
func PrecisionOf(e Engine) Precision {
	if p, ok := e.(PrecisionReporter); ok {
		return p.Precision()
	}
	return Float64
}

// StatsOf returns the engine's instrumentation counters (zero when the
// engine does not keep any).
func StatsOf(e Engine) EngineStats {
	if s, ok := e.(StatsReporter); ok {
		return s.Stats()
	}
	return EngineStats{}
}

// BranchGradientsOf computes the all-branches gradient when the engine
// has the GradientSmoother capability, reporting ok=false (with dst and
// the tree untouched) when it does not.
func BranchGradientsOf(e Engine, t *tree.Tree, dst []BranchGrad) (grads []BranchGrad, lnL float64, ok bool, err error) {
	if g, isGS := e.(GradientSmoother); isGS {
		grads, lnL, err = g.BranchGradients(t, dst)
		return grads, lnL, true, err
	}
	return dst, 0, false, nil
}

// OpsOf returns the engine's work counter (zero when the engine does not
// keep one).
func OpsOf(e Engine) uint64 {
	if o, ok := e.(OpsReporter); ok {
		return o.Ops()
	}
	return 0
}

// Compile-time interface conformance for the in-tree backends.
var (
	_ Engine            = (*CachedEngine)(nil)
	_ Threader          = (*CachedEngine)(nil)
	_ Closer            = (*CachedEngine)(nil)
	_ PrecisionReporter = (*CachedEngine)(nil)
	_ StatsReporter     = (*CachedEngine)(nil)
	_ OpsReporter       = (*CachedEngine)(nil)
	_ Invalidator       = (*CachedEngine)(nil)
	_ GradientSmoother  = (*CachedEngine)(nil)

	_ Engine            = (*ReferenceEngine)(nil)
	_ PrecisionReporter = (*ReferenceEngine)(nil)
)
