package likelihood

import (
	"encoding/json"
	"time"

	"repro/internal/tree"
)

// CLV cache: memoized conditional likelihood vectors per directed edge.
//
// partial(n, parent) — the likelihood of the subtree at n seen from
// parent — is a pure function of the subtree topology and its branch
// lengths. The cache stores one entry per directed edge and validates it
// structurally on every lookup: the entry remembers which node object it
// was computed for (pointer identity, so a recycled node ID cannot alias
// a stale entry), that node's edge-revision counter at fill time, and the
// child entries it combined, identified by (node pointer, generation).
// Generations are globally monotonic and bumped whenever an entry is
// refilled, so a hit at node n proves transitively that every CLV below n
// is unchanged — without timestamps or explicit dependency edges.
//
// Invalidation is therefore mostly automatic: tree.SetLen and topology
// edits bump the endpoint revisions and the next lookup misses. The
// explicit InvalidateEdge/InvalidateAll entry points exist for callers
// that mutate branch lengths behind the tree package's back.
//
// Cache hits perform zero pattern-level work and add nothing to the ops
// counter; only refills count, keeping the work-unit accounting that the
// cluster simulator consumes honest.

// tipGen is the generation reported for leaf tips. Tip vectors are
// constant, so a single reserved generation below every entry generation
// suffices; nextGen starts above it.
const tipGen uint64 = 1

// EngineStats counts cache behaviour since the last ResetStats.
type EngineStats struct {
	// Hits counts partial() lookups served from a valid cache entry.
	Hits uint64
	// Misses counts lookups that found no valid entry.
	Misses uint64
	// Recomputed counts CLV refills; equal to Misses today but kept
	// separate so future prefill paths can recompute without a lookup.
	Recomputed uint64
	// Invalidated counts entries explicitly marked stale via
	// InvalidateEdge.
	Invalidated uint64
	// Flushes counts InvalidateAll calls.
	Flushes uint64
	// Entries is the number of cache entries currently allocated
	// (filled or not); a gauge, not a counter.
	Entries int
	// NewtonIters counts Newton-Raphson iterations across every branch
	// length optimization (the per-phase work measure of the paper's §4
	// breakdown that pure op counts miss). Gradient-mode derivative
	// evaluations count here too: each is one Newton iterate's worth of
	// kernel work.
	NewtonIters uint64
	// SmoothPasses counts sequential Newton sweep passes over the tree
	// (OptimizeBranches in sweep mode, and the safeguarded fallback).
	SmoothPasses uint64
	// GradPasses counts applied simultaneous gradient-smoothing rounds
	// (OptimizeBranches in gradient mode).
	GradPasses uint64
	// GradFallbacks counts gradient rounds that lost likelihood, were
	// reverted, and fell back to the sequential sweep.
	GradFallbacks uint64
	// ShardDispatches counts kernel launches fanned out to the thread
	// pool (zero for single-threaded engines).
	ShardDispatches uint64
	// EvalTime is wall-clock time spent inside the engine's evaluation
	// entry points (LogLikelihood, OptimizeBranches, insertion scoring).
	// Stored at full time.Duration precision; the JSON form keeps the
	// historical milliseconds field (fractional, so nothing is lost).
	EvalTime time.Duration
}

// engineStatsJSON is the wire/JSON shape of EngineStats. Elapsed time is
// exported as fractional milliseconds ("eval_time_ms") for backward
// compatibility with consumers of the old integer-ms convention, while
// the in-memory representation is a full-precision time.Duration.
type engineStatsJSON struct {
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Recomputed  uint64  `json:"recomputed"`
	Invalidated uint64  `json:"invalidated"`
	Flushes     uint64  `json:"flushes"`
	Entries     int     `json:"entries"`
	NewtonIters uint64  `json:"newton_iters"`
	SmoothPass  uint64  `json:"smooth_passes,omitempty"`
	GradPass    uint64  `json:"grad_passes,omitempty"`
	GradFall    uint64  `json:"grad_fallbacks,omitempty"`
	ShardDisp   uint64  `json:"shard_dispatches,omitempty"`
	EvalTimeMs  float64 `json:"eval_time_ms"`
}

// MarshalJSON implements json.Marshaler.
func (s EngineStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(engineStatsJSON{
		Hits: s.Hits, Misses: s.Misses, Recomputed: s.Recomputed,
		Invalidated: s.Invalidated, Flushes: s.Flushes, Entries: s.Entries,
		NewtonIters: s.NewtonIters, SmoothPass: s.SmoothPasses,
		GradPass: s.GradPasses, GradFall: s.GradFallbacks,
		ShardDisp:  s.ShardDispatches,
		EvalTimeMs: float64(s.EvalTime) / float64(time.Millisecond),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *EngineStats) UnmarshalJSON(data []byte) error {
	var j engineStatsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = EngineStats{
		Hits: j.Hits, Misses: j.Misses, Recomputed: j.Recomputed,
		Invalidated: j.Invalidated, Flushes: j.Flushes, Entries: j.Entries,
		NewtonIters: j.NewtonIters, SmoothPasses: j.SmoothPass,
		GradPasses: j.GradPass, GradFallbacks: j.GradFall,
		ShardDispatches: j.ShardDisp,
		EvalTime:        time.Duration(j.EvalTimeMs * float64(time.Millisecond)),
	}
	return nil
}

// kidRef records one child combined into an entry: which node, the
// generation of its CLV at combine time, and (during a fill) the vector
// view and branch length to combine.
type kidRef struct {
	node *tree.Node
	gen  uint64
	ref  clvRef
	z    float64
}

// clvEntry caches the CLV of one directed edge (node seen from parent).
type clvEntry struct {
	node    *tree.Node
	parent  *tree.Node
	nodeRev uint64
	kids    []kidRef // children validated at fill time (refs not retained)
	gen     uint64
	filled  bool
	ref     clvRef   // slab-backed buffers; ref.sc == nil until first fill
	tmp     []kidRef // per-traversal scratch, reused
}

// clvCache indexes entries by node ID (small per-node lists, at most one
// per live direction plus transients from released-and-reused IDs).
type clvCache struct {
	byNode [][]*clvEntry
	gen    uint64

	// Buffer geometry: every CLV buffer is 4 SoA lanes of npad entries
	// (the engine's padded pattern count) at the engine's precision.
	npad int
	prec Precision

	// Slab arena for entry buffers: CLV and scale vectors are carved out
	// of shared slabs (clvSlabEntries entries per slab) instead of being
	// allocated one make() pair per entry, so growing a tree allocates
	// O(taxa / slabEntries) times rather than O(taxa) and steady-state
	// evaluation allocates nothing. One float slab per precision; only
	// the engine's own is ever populated.
	slabF   []float64
	slabF32 []float32
	slabI   []int32
}

// clvSlabEntries is how many entries' worth of buffers one slab holds.
const clvSlabEntries = 16

// init records the buffer geometry the slabs must serve.
func (c *clvCache) init(npad int, prec Precision) {
	c.npad = npad
	c.prec = prec
}

// allocCLV carves one entry's CLV and scale buffers from the slabs,
// sized for the padded SoA layout (4 lanes of npad each). Slab memory
// comes from make() and padded tail entries are never written, so
// padding stays exactly zero for the buffer's lifetime.
func (c *clvCache) allocCLV() clvRef {
	nf, ni := c.npad*4, c.npad
	var ref clvRef
	if c.prec == Float32 {
		if cap(c.slabF32)-len(c.slabF32) < nf {
			c.slabF32 = make([]float32, 0, nf*clvSlabEntries)
		}
		ref.f32 = c.slabF32[len(c.slabF32) : len(c.slabF32)+nf : len(c.slabF32)+nf]
		c.slabF32 = c.slabF32[:len(c.slabF32)+nf]
	} else {
		if cap(c.slabF)-len(c.slabF) < nf {
			c.slabF = make([]float64, 0, nf*clvSlabEntries)
		}
		ref.f64 = c.slabF[len(c.slabF) : len(c.slabF)+nf : len(c.slabF)+nf]
		c.slabF = c.slabF[:len(c.slabF)+nf]
	}
	if cap(c.slabI)-len(c.slabI) < ni {
		c.slabI = make([]int32, 0, ni*clvSlabEntries)
	}
	ref.sc = c.slabI[len(c.slabI) : len(c.slabI)+ni : len(c.slabI)+ni]
	c.slabI = c.slabI[:len(c.slabI)+ni]
	return ref
}

func (c *clvCache) nextGen() uint64 {
	if c.gen < tipGen {
		c.gen = tipGen
	}
	c.gen++
	return c.gen
}

func (c *clvCache) grow(n int) {
	for len(c.byNode) < n {
		c.byNode = append(c.byNode, nil)
	}
}

// entryFor returns the entry for directed edge (n seen from parent),
// creating or recycling one as needed. The returned entry is not
// necessarily valid; partial() decides that.
func (c *clvCache) entryFor(n, parent *tree.Node) *clvEntry {
	c.grow(n.ID + 1)
	var reuse *clvEntry
	for _, ent := range c.byNode[n.ID] {
		if ent.node == n && ent.parent == parent {
			return ent
		}
		// Entries for a node object that no longer owns this ID, or for
		// a direction that no longer exists, are recycled in place so the
		// per-ID lists stay bounded across tree edits.
		if reuse == nil && (ent.node != n || n.NbrIndex(ent.parent) < 0) {
			reuse = ent
		}
	}
	if reuse != nil {
		reuse.node, reuse.parent = n, parent
		reuse.filled = false
		return reuse
	}
	ent := &clvEntry{node: n, parent: parent}
	c.byNode[n.ID] = append(c.byNode[n.ID], ent)
	return ent
}

// peek returns the entry for (n, parent) without creating one.
func (c *clvCache) peek(n, parent *tree.Node) *clvEntry {
	if n.ID >= len(c.byNode) {
		return nil
	}
	for _, ent := range c.byNode[n.ID] {
		if ent.node == n && ent.parent == parent {
			return ent
		}
	}
	return nil
}

// Stats returns the counters since the last ResetStats plus the current
// entry gauge.
func (e *CachedEngine) Stats() EngineStats {
	s := e.stats
	for _, list := range e.cache.byNode {
		s.Entries += len(list)
	}
	return s
}

// ResetStats zeroes the cache counters and returns the previous values.
// The cache contents are untouched.
func (e *CachedEngine) ResetStats() EngineStats {
	s := e.Stats()
	e.stats = EngineStats{}
	return s
}

// InvalidateAll marks every cached CLV stale. Entry buffers are kept for
// reuse.
func (e *CachedEngine) InvalidateAll() {
	for _, list := range e.cache.byNode {
		for _, ent := range list {
			ent.filled = false
		}
	}
	e.stats.Flushes++
}

// InvalidateEdge marks stale every cached CLV whose value depends on the
// length of edge (a, b): on each side of the edge, all directions
// pointing away from it. The two CLVs (a seen from b) and (b seen from a)
// do not depend on the edge's own length and stay valid. Use this after
// mutating branch lengths directly instead of through tree.SetLen.
func (e *CachedEngine) InvalidateEdge(a, b *tree.Node) {
	e.invalAway(a, b)
	e.invalAway(b, a)
}

// invalAway walks outward from x (not crossing back toward `from`),
// marking every directed entry that looks across x toward `from`'s side.
func (e *CachedEngine) invalAway(x, from *tree.Node) {
	for _, nb := range x.Nbr {
		if nb == from {
			continue
		}
		if ent := e.cache.peek(x, nb); ent != nil && ent.filled {
			ent.filled = false
			e.stats.Invalidated++
		}
		e.invalAway(nb, x)
	}
}
