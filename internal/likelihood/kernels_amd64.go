//go:build amd64

package likelihood

// AVX2 fast path for the fused binary combine (segCombine2), the kernel
// that dominates tree evaluation time (~85% of a cached evaluation's
// cycles). The assembly in kernels_amd64.s processes four patterns per
// iteration with 256-bit vectors; it is gated at runtime by CPUID so a
// GOAMD64=v1 build still runs (and falls back to the scalar kernel) on
// pre-AVX2 hardware.
//
// Bit-identity contract: the vector kernel performs, lane for lane, the
// exact floating-point operations of segCombine2 in the same order —
// multiplies are commuted only (IEEE-exact), dot products stay
// left-associated, and no FMA contraction is used (gc does not contract
// on amd64, so the scalar reference is mul+add too). Groups where any
// pattern would rescale are NOT handled in assembly: the kernel stops
// before storing that group and reports how many groups it completed,
// and the wrapper reruns the group through the scalar kernel. Rescaling
// is rare in steady state (the whole point of counting scale events),
// so the bail costs little and keeps the underflow path on one shared
// code path.

// combine2AVX2 computes groups*4 patterns of dst = (Ma·a) ⊙ (Mb·b)
// starting at the given lane-0 element pointers, where each CLV lane k
// lives at +k*npad entries. tab is the pre-broadcast coefficient table:
// rows 0..15 hold Ma[j][k] at row j*4+k (each coefficient repeated 4×),
// rows 16..31 hold Mb likewise, and row 32 holds the rescale threshold.
// It returns the number of complete groups processed; a return < groups
// means the next group contains a pattern needing rescaling (or a
// non-finite value) and was left untouched for the scalar kernel.
//
//go:noescape
func combine2AVX2(dst, a, b *float64, tab *[33][4]float64, dsc, asc, bsc *int32, groups, npad int) int

// cpuidAsm executes CPUID with the given leaf/subleaf.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (only valid once OSXSAVE is confirmed).
func xgetbvAsm() (eax, edx uint32)

// hasAVX2 reports whether the CPU and OS support AVX2 (AVX2 feature
// flag, AVX, OSXSAVE, and XMM+YMM state enabled in XCR0).
func hasAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&(1<<5) != 0
}

// useAVX2 gates the vector combine at runtime, independent of GOAMD64.
var useAVX2 = hasAVX2()

// combine2F64 runs the fused binary combine over the padded range
// [lo, lo+n) using the AVX2 kernel for full 4-pattern groups and the
// scalar kernel for groups that rescale and for the tail. Padding is
// never touched: n counts real patterns only.
func combine2F64(dst, a, b []float64, ma, mb *[4][4]float64, tab *[33][4]float64,
	dsc, asc, bsc []int32, npad, lo, n int) {
	for n >= 4 {
		g := n >> 2
		done := combine2AVX2(&dst[lo], &a[lo], &b[lo], tab, &dsc[lo], &asc[lo], &bsc[lo], g, npad)
		lo += 4 * done
		n -= 4 * done
		if done < g {
			// The next group has a pattern that rescales; the scalar
			// kernel is the reference for that path.
			segCombine2(dst, a, b, ma, mb, dsc, asc, bsc, scaleThreshold, scaleFactor, npad, lo, 4)
			lo += 4
			n -= 4
		}
	}
	if n > 0 {
		segCombine2(dst, a, b, ma, mb, dsc, asc, bsc, scaleThreshold, scaleFactor, npad, lo, n)
	}
}
