package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// withinTol reports whether got agrees with want under the combined
// relative/absolute bound used by the float32 tolerance contract.
func withinTol(got, want, rel, abs float64) bool {
	d := math.Abs(got - want)
	return d <= abs || d <= rel*math.Abs(want)
}

// caterpillarFixture builds the worst-case geometry for CLV underflow: a
// maximally unbalanced (caterpillar) tree whose pruning recursion is as
// deep as the taxon count, over random sequences so most patterns
// conflict along the spine and conditional likelihoods shrink
// geometrically with depth.
func caterpillarFixture(t testing.TB, seed int64, taxa, sites int) (model.Model, *seq.Patterns, *tree.Tree) {
	rng := rand.New(rand.NewSource(seed))
	rows := randomRows(rng, taxa, sites)
	a := seq.NewAlignment(len(rows))
	names := taxaNames(taxa)
	for i, r := range rows {
		if err := a.Add(names[i], r); err != nil {
			t.Fatal(err)
		}
	}
	p, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.New(names)
	if _, err := tr.GraftPair(0, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < taxa; i++ {
		leaf := tr.LeafByTaxon(i - 1)
		if _, err := tr.InsertLeaf(i, tree.Edge{A: leaf, B: leaf.Nbr[0]}); err != nil {
			t.Fatal(err)
		}
	}
	// Short branches keep per-join mismatch factors small (~1e-2), so a
	// deep spine drives pattern maxima far below float32's exponent
	// range — the run only survives if the aggressive rescaling works.
	for _, ed := range tr.Edges() {
		tree.SetLen(ed.A, ed.B, 0.04)
	}
	return m, p, tr
}

// TestFloat32MatchesFloat64 is the precision property test: over
// randomized datasets and trees, a Float32 engine must agree with the
// Float64 engine on log-likelihoods and Newton-optimized branch lengths
// within the documented tolerance contract (Float32*Tol, precision.go).
func TestFloat32MatchesFloat64(t *testing.T) {
	cases := []struct {
		seed        int64
		taxa, sites int
	}{
		{seed: 21, taxa: 10, sites: 300},
		{seed: 22, taxa: 16, sites: 400},
		{seed: 23, taxa: 24, sites: 500},
	}
	for _, tc := range cases {
		m, p, tr := threadFixture(t, tc.seed, tc.taxa, tc.sites)
		e64, err := NewWithPrecision(m, p, Float64)
		if err != nil {
			t.Fatal(err)
		}
		e32, err := NewWithPrecision(m, p, Float32)
		if err != nil {
			t.Fatal(err)
		}
		if e64.Precision() != Float64 || e32.Precision() != Float32 {
			t.Fatalf("seed=%d: precision labels wrong: %v %v", tc.seed, e64.Precision(), e32.Precision())
		}

		t64, t32 := tr.Clone(), tr.Clone()
		l64, err := e64.LogLikelihood(t64)
		if err != nil {
			t.Fatal(err)
		}
		l32, err := e32.LogLikelihood(t32)
		if err != nil {
			t.Fatal(err)
		}
		if !withinTol(l32, l64, Float32LnLRelTol, Float32LnLAbsTol) {
			t.Errorf("seed=%d: lnL32 %.10g vs lnL64 %.10g exceeds tolerance (diff %.3g)",
				tc.seed, l32, l64, math.Abs(l32-l64))
		}

		o64, err := e64.OptimizeBranches(t64, OptOptions{Passes: 4})
		if err != nil {
			t.Fatal(err)
		}
		o32, err := e32.OptimizeBranches(t32, OptOptions{Passes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !withinTol(o32, o64, Float32LnLRelTol, Float32LnLAbsTol) {
			t.Errorf("seed=%d: optimized lnL32 %.10g vs lnL64 %.10g exceeds tolerance (diff %.3g)",
				tc.seed, o32, o64, math.Abs(o32-o64))
		}
		ed64, ed32 := t64.Edges(), t32.Edges()
		if len(ed64) != len(ed32) {
			t.Fatalf("seed=%d: edge counts diverged: %d vs %d", tc.seed, len(ed64), len(ed32))
		}
		for i := range ed64 {
			if ed64[i].A.ID != ed32[i].A.ID || ed64[i].B.ID != ed32[i].B.ID {
				t.Fatalf("seed=%d: edge %d identity diverged", tc.seed, i)
			}
			g, w := ed32[i].Length(), ed64[i].Length()
			if !withinTol(g, w, Float32LenRelTol, Float32LenAbsTol) {
				t.Errorf("seed=%d: edge %d-%d length %.8g (f32) vs %.8g (f64) exceeds tolerance",
					tc.seed, ed64[i].A.ID, ed64[i].B.ID, g, w)
			}
		}

		// A Float32 engine is still bit-reproducible against itself at
		// any thread count (the precision.go contract): reductions stay
		// float64 in fixed shard order regardless of CLV storage.
		e32t, err := NewWithPrecision(m, p, Float32)
		if err != nil {
			t.Fatal(err)
		}
		e32t.SetThreads(4)
		lt, err := e32t.LogLikelihood(tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(lt) != math.Float64bits(l32) {
			t.Errorf("seed=%d: threaded float32 lnL %.17g not bit-identical to serial %.17g",
				tc.seed, lt, l32)
		}
		e32t.Close()
		e64.Close()
		e32.Close()
	}
}

// TestFloat32DeepCaterpillarRescale stresses the underflow path: a
// 48-taxon caterpillar over random data pushes per-pattern conditional
// maxima to ~1e-60 and beyond, far below float32's smallest normal
// (~1.2e-38). The float32 engine must (a) actually fire its aggressive
// rescaling, (b) produce a finite log-likelihood, and (c) stay inside
// the tolerance contract against float64.
func TestFloat32DeepCaterpillarRescale(t *testing.T) {
	m, p, tr := caterpillarFixture(t, 41, 48, 300)

	e64, err := NewWithPrecision(m, p, Float64)
	if err != nil {
		t.Fatal(err)
	}
	e32, err := NewWithPrecision(m, p, Float32)
	if err != nil {
		t.Fatal(err)
	}
	l64, err := e64.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	l32, err := e32.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(l32, 0) || math.IsNaN(l32) {
		t.Fatalf("float32 lnL not finite on deep caterpillar: %g", l32)
	}
	if !withinTol(l32, l64, Float32LnLRelTol, Float32LnLAbsTol) {
		t.Errorf("deep tree: lnL32 %.10g vs lnL64 %.10g exceeds tolerance (diff %.3g)",
			l32, l64, math.Abs(l32-l64))
	}

	// The deepest directed CLV (looking down the whole spine from leaf 0)
	// must have accumulated scale events, or the test isn't actually
	// exercising the rescale machinery.
	leaf := tr.LeafByTaxon(0)
	ref := e32.downPartial(leaf.Nbr[0], leaf)
	var scaled int64
	for _, s := range ref.sc {
		scaled += int64(s)
	}
	if scaled == 0 {
		t.Error("deep caterpillar produced zero float32 scale events; stress is not stressing")
	}

	// Branch-length optimization must also survive the repeated
	// rescale/underflow regime.
	t64, t32 := tr.Clone(), tr.Clone()
	o64, err := e64.OptimizeBranches(t64, OptOptions{Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	o32, err := e32.OptimizeBranches(t32, OptOptions{Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !withinTol(o32, o64, Float32LnLRelTol, Float32LnLAbsTol) {
		t.Errorf("deep tree optimized: lnL32 %.10g vs lnL64 %.10g exceeds tolerance (diff %.3g)",
			o32, o64, math.Abs(o32-o64))
	}
	ed64, ed32 := t64.Edges(), t32.Edges()
	for i := range ed64 {
		g, w := ed32[i].Length(), ed64[i].Length()
		if !withinTol(g, w, Float32LenRelTol, Float32LenAbsTol) {
			t.Errorf("deep tree edge %d-%d: length %.8g (f32) vs %.8g (f64) exceeds tolerance",
				ed64[i].A.ID, ed64[i].B.ID, g, w)
		}
	}
	e64.Close()
	e32.Close()
}

// TestVectorCombine2MatchesScalar pins the AVX2 fused-combine kernel to
// the scalar reference bit for bit: a float64 engine with the vector
// path enabled must produce byte-identical log-likelihoods, optimized
// branch lengths, and trees to one forced onto segCombine2 — including
// on the deep caterpillar, where the vector kernel's bail-to-scalar
// rescale protocol is exercised heavily.
func TestVectorCombine2MatchesScalar(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 kernel unavailable on this host")
	}
	run := func(name string, m model.Model, p *seq.Patterns, tr *tree.Tree) {
		vec, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		sca, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if vec.bc2 == nil {
			t.Fatalf("%s: vector engine has no broadcast tables despite AVX2", name)
		}
		sca.bc2 = nil // force the scalar segCombine2 path

		tv, ts := tr.Clone(), tr.Clone()
		lv, err := vec.LogLikelihood(tv)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := sca.LogLikelihood(ts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(lv) != math.Float64bits(ls) {
			t.Errorf("%s: vector lnL %.17g not bit-identical to scalar %.17g", name, lv, ls)
		}
		ov, err := vec.OptimizeBranches(tv, OptOptions{Passes: 3})
		if err != nil {
			t.Fatal(err)
		}
		os, err := sca.OptimizeBranches(ts, OptOptions{Passes: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ov) != math.Float64bits(os) {
			t.Errorf("%s: vector optimized lnL %.17g != scalar %.17g", name, ov, os)
		}
		if tv.Newick() != ts.Newick() {
			t.Errorf("%s: vector-optimized tree differs from scalar:\n got %s\nwant %s",
				name, tv.Newick(), ts.Newick())
		}
		vec.Close()
		sca.Close()
	}

	m, p, tr := threadFixture(t, 17, 14, 500)
	run("random", m, p, tr)
	mc, pc, trc := caterpillarFixture(t, 43, 40, 250)
	run("caterpillar", mc, pc, trc)
}
