package likelihood

import (
	"fmt"
	"testing"

	"repro/internal/tree"
)

// Kernel benchmarks for the scaling study. Run with
//
//	go test -run XXX -bench 'DownPartial|NewtonEdge' -cpu 1,2,4 -benchmem ./internal/likelihood/
//
// (make bench). ReportAllocs asserts the zero-alloc steady state; the
// threads=N sub-benchmarks measure the sharded kernels against the
// serial baseline on identical data.

var benchThreadCounts = []int{1, 2, 4, 8}

// benchEngine builds a warmed engine + tree at the given thread count.
func benchEngine(b *testing.B, threads int) (*CachedEngine, *tree.Tree) {
	b.Helper()
	m, p, tr := threadFixture(b, 17, 24, 3000)
	eng, err := New(m, p)
	if err != nil {
		b.Fatal(err)
	}
	if threads > 1 {
		eng.SetThreads(threads)
	}
	if _, err := eng.LogLikelihood(tr); err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkDownPartialCached measures the pruning recompute path with a
// warm arena: perturbing one interior branch per iteration invalidates
// the chain of CLVs that depend on it, so each evaluation re-runs the
// combine/rescale kernels (sharded when threads > 1) against cached
// children — the dominant kernel of an add or rearrangement round.
func BenchmarkDownPartialCached(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchDownPartial(b, threads)
		})
	}
}

func benchDownPartial(b *testing.B, threads int) {
	eng, tr := benchEngine(b, threads)
	defer eng.Close()
	internal := tr.InternalEdges()
	if len(internal) == 0 {
		b.Fatal("no internal edges")
	}
	ed := internal[len(internal)/2]
	z := ed.Length()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SetLen(ed.A, ed.B, z+float64(i%2)*1e-6)
		if _, err := eng.LogLikelihood(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewtonEdge measures single-edge Newton-Raphson optimization
// on a warm cache: the first/second-derivative kernel dominates.
func BenchmarkNewtonEdge(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchNewton(b, threads)
		})
	}
}

func benchNewton(b *testing.B, threads int) {
	eng, tr := benchEngine(b, threads)
	defer eng.Close()
	ed, ok := tr.FirstEdge()
	if !ok {
		b.Fatal("no edge")
	}
	if _, err := eng.OptimizeEdge(tr, ed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.OptimizeEdge(tr, ed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSmooth measures full branch smoothing to convergence —
// the dominant cost of round-best re-optimization in the search. Each
// iteration restarts from the same deterministic perturbation of the
// converged optimum (alternate edges scaled ×1.6 / ×0.6), so every op
// performs identical work, and passes-to-convergence is reported as a
// metric alongside wall time.
func BenchmarkFullSmooth(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchSmooth(b, threads)
		})
	}
}

// BenchmarkGradientSmooth is BenchmarkFullSmooth in SmoothGradient mode:
// same fixture, same perturbed start, same convergence gate, so the
// ns/op ratio between the two is the gradient smoother's speedup to the
// same optimum.
func BenchmarkGradientSmooth(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchGradientSmooth(b, threads)
		})
	}
}

func benchSmooth(b *testing.B, threads int)         { benchSmoothConverge(b, threads, SmoothSweep) }
func benchGradientSmooth(b *testing.B, threads int) { benchSmoothConverge(b, threads, SmoothGradient) }

func benchSmoothConverge(b *testing.B, threads int, mode SmoothMode) {
	// The caterpillar fixture is well-specified for its data (chain-
	// correlated rows), so the optimum has interior branch lengths and
	// both smoothing modes converge to it cleanly.
	m, p, tr := caterpillarFixture(b, 17, 24, 3000)
	eng, err := New(m, p)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if threads > 1 {
		eng.SetThreads(threads)
	}
	opt := OptOptions{Passes: 16, Mode: mode}
	// Converge once, snapshot the optimum, and restart every iteration
	// from the same deterministic perturbation of it.
	if _, err := eng.OptimizeBranches(tr, opt); err != nil {
		b.Fatal(err)
	}
	edges := tr.Edges()
	lens := make([]float64, len(edges))
	for i, ed := range edges {
		lens[i] = ed.Length()
	}
	perturb := func() {
		for i, ed := range edges {
			f := 1.6
			if i%2 == 1 {
				f = 0.6
			}
			tree.SetLen(ed.A, ed.B, lens[i]*f)
		}
	}
	// One perturbed solve to warm the arena and smoothing scratch.
	perturb()
	if _, err := eng.OptimizeBranches(tr, opt); err != nil {
		b.Fatal(err)
	}
	eng.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturb()
		if _, err := eng.OptimizeBranches(tr, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(float64(st.SmoothPasses+st.GradPasses)/float64(b.N), "passes/op")
	if st.GradFallbacks > 0 {
		b.ReportMetric(float64(st.GradFallbacks)/float64(b.N), "fallbacks/op")
	}
}
