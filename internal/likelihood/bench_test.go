package likelihood

import (
	"fmt"
	"testing"

	"repro/internal/tree"
)

// Kernel benchmarks for the scaling study. Run with
//
//	go test -run XXX -bench 'DownPartial|NewtonEdge' -cpu 1,2,4 -benchmem ./internal/likelihood/
//
// (make bench). ReportAllocs asserts the zero-alloc steady state; the
// threads=N sub-benchmarks measure the sharded kernels against the
// serial baseline on identical data.

var benchThreadCounts = []int{1, 2, 4, 8}

// benchEngine builds a warmed engine + tree at the given thread count.
func benchEngine(b *testing.B, threads int) (*CachedEngine, *tree.Tree) {
	b.Helper()
	m, p, tr := threadFixture(b, 17, 24, 3000)
	eng, err := New(m, p)
	if err != nil {
		b.Fatal(err)
	}
	if threads > 1 {
		eng.SetThreads(threads)
	}
	if _, err := eng.LogLikelihood(tr); err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkDownPartialCached measures the pruning recompute path with a
// warm arena: perturbing one interior branch per iteration invalidates
// the chain of CLVs that depend on it, so each evaluation re-runs the
// combine/rescale kernels (sharded when threads > 1) against cached
// children — the dominant kernel of an add or rearrangement round.
func BenchmarkDownPartialCached(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchDownPartial(b, threads)
		})
	}
}

func benchDownPartial(b *testing.B, threads int) {
	eng, tr := benchEngine(b, threads)
	defer eng.Close()
	internal := tr.InternalEdges()
	if len(internal) == 0 {
		b.Fatal("no internal edges")
	}
	ed := internal[len(internal)/2]
	z := ed.Length()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SetLen(ed.A, ed.B, z+float64(i%2)*1e-6)
		if _, err := eng.LogLikelihood(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewtonEdge measures single-edge Newton-Raphson optimization
// on a warm cache: the first/second-derivative kernel dominates.
func BenchmarkNewtonEdge(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchNewton(b, threads)
		})
	}
}

func benchNewton(b *testing.B, threads int) {
	eng, tr := benchEngine(b, threads)
	defer eng.Close()
	ed, ok := tr.FirstEdge()
	if !ok {
		b.Fatal("no edge")
	}
	if _, err := eng.OptimizeEdge(tr, ed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.OptimizeEdge(tr, ed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSmooth measures a full smoothing pass over every branch —
// the dominant cost of round-best re-optimization in the search.
func BenchmarkFullSmooth(b *testing.B) {
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchSmooth(b, threads)
		})
	}
}

func benchSmooth(b *testing.B, threads int) {
	eng, tr := benchEngine(b, threads)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.OptimizeBranches(tr, OptOptions{Passes: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
