package likelihood

import (
	"sync"
	"sync/atomic"
)

// Multi-core kernels: the pattern dimension of every inner loop —
// pruning combines, rescaling, the root log-likelihood sum, and the
// Newton first/second-derivative sums — is data-parallel, so the engine
// cuts the permuted pattern range into fixed shards and runs each kernel
// shard-by-shard on a persistent per-engine goroutine pool.
//
// Determinism contract: the shard layout is a pure function of the data
// (pattern count and rate-class blocks), never of the thread count, and
// reductions accumulate one partial per shard which the caller sums in
// shard index order. Threads therefore only changes which goroutine runs
// a shard, not a single floating-point operation or its order, so
// Threads: N is bit-identical to Threads: 1 for every kernel. Shard cut
// points are chosen on the *real* pattern axis — the same `s*npat/n`
// boundaries as the pre-SoA engine — so the padded layout changes where
// patterns live in memory but not how reductions group, keeping float64
// results bit-identical across the layout change too.

const (
	// minShardPatterns is the smallest pattern range worth a shard; tiny
	// data sets stay single-sharded and pay no reduction restructuring.
	minShardPatterns = 64
	// maxShards bounds the layout (and the per-shard partial arrays).
	maxShards = 16
)

// shardSeg is a run of patterns within one rate-class block, so kernels
// still hoist the transition-matrix lookup out of the pattern loop. lo/hi
// index the real (permuted) pattern axis; plo is where the run starts on
// the padded axis the SoA lanes are laid out on.
type shardSeg struct {
	ci     int // rate class index
	lo, hi int // permuted pattern index range [lo, hi)
	plo    int // padded start index of this run
}

// shard is one contiguous pattern range, pre-cut into class segments.
type shard struct {
	segs []shardSeg
}

// buildShards cuts [0, npat) into near-equal contiguous ranges aligned
// with the class blocks: a shard boundary inside a block splits it into
// segments that each stay within one class.
func buildShards(blocks []classBlock, npat int) []shard {
	n := npat / minShardPatterns
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	shards := make([]shard, n)
	for s := 0; s < n; s++ {
		lo, hi := s*npat/n, (s+1)*npat/n
		for _, blk := range blocks {
			slo, shi := max(lo, blk.lo), min(hi, blk.hi)
			if slo < shi {
				shards[s].segs = append(shards[s].segs, shardSeg{
					ci: blk.ci, lo: slo, hi: shi, plo: blk.plo + (slo - blk.lo),
				})
			}
		}
	}
	return shards
}

// Kernel opcodes for the engine-held dispatch arguments. Keeping the
// arguments in a struct owned by the engine (rather than a closure per
// call) is what makes threaded dispatch allocation-free.
const (
	kCombineFirst = iota
	kCombineMul
	kCombineFirstResc
	kCombineMulResc
	kCombine2
	kEdgeLnL
	kDeriv
	kDerivGrad
	kSiteLnL
)

// kernArgs carries one kernel invocation's inputs. Written by the
// dispatching caller before the pool wakes, read by the shard workers;
// the wake channel send and WaitGroup wait order the accesses.
type kernArgs struct {
	op       int
	dst, src clvRef
	src2     clvRef
	a, b     clvRef
	out      []float64
}

// shardPool runs kernel shards on threads-1 persistent goroutines plus
// the calling goroutine. Shards are claimed by an atomic counter, so a
// slow core never strands work pinned to it.
type shardPool struct {
	e    *CachedEngine
	wake []chan struct{}
	quit chan struct{}
	next atomic.Int64
	wg   sync.WaitGroup
}

func newShardPool(e *CachedEngine, workers int) *shardPool {
	p := &shardPool{e: e, quit: make(chan struct{})}
	p.wake = make([]chan struct{}, workers)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(p.wake[i])
	}
	return p
}

func (p *shardPool) worker(wake chan struct{}) {
	for {
		select {
		case <-p.quit:
			return
		case <-wake:
			p.drain()
			p.wg.Done()
		}
	}
}

// drain claims and runs shards until the counter runs past the layout.
func (p *shardPool) drain() {
	n := len(p.e.shards)
	for {
		s := int(p.next.Add(1)) - 1
		if s >= n {
			return
		}
		p.e.shardKernel(s)
	}
}

// dispatch runs the engine's current kernel over all shards, caller
// participating, and returns when every shard completed.
func (p *shardPool) dispatch() {
	p.next.Store(0)
	p.wg.Add(len(p.wake))
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
}

func (p *shardPool) stop() { close(p.quit) }

// SetThreads sizes the engine's kernel pool to n threads (the caller
// plus n-1 persistent goroutines); n <= 1 restores single-threaded
// operation. It must not be called while an evaluation is in progress.
// Results are bit-identical for every n.
func (e *CachedEngine) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	if n == e.threads {
		return
	}
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	e.threads = n
	if n > 1 {
		e.pool = newShardPool(e, n-1)
	}
}

// Threads reports the engine's configured kernel thread count.
func (e *CachedEngine) Threads() int { return e.threads }

// Close releases the engine's kernel pool goroutines. It is a no-op for
// single-threaded engines; threaded engines should be closed when no
// longer needed.
func (e *CachedEngine) Close() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
		e.threads = 1
	}
}

// runShards executes the kernel described by e.kern over every shard.
func (e *CachedEngine) runShards() {
	if e.pool == nil {
		for s := range e.shards {
			e.shardKernel(s)
		}
		return
	}
	e.stats.ShardDispatches++
	e.pool.dispatch()
}

// shardKernel runs the current kernel over shard s. It is the only code
// executed by pool goroutines; everything it touches is either read-only
// during a dispatch (transition matrices, tips, weights) or partitioned
// by shard (CLV ranges, per-shard partials). Each opcode dispatches to
// the generic segment kernels in kernels.go at the engine's precision;
// reductions always accumulate in float64 with one accumulator threaded
// through the whole shard, so the summation grouping matches the
// pre-SoA engine exactly.
func (e *CachedEngine) shardKernel(s int) {
	k := &e.kern
	segs := e.shards[s].segs
	freqs := (*[4]float64)(&e.freqs)
	switch k.op {
	case kCombineFirst:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segCombineFirst(k.dst.f32, k.src.f32, &e.pmat32[seg.ci], e.npad, seg.plo, n)
			} else {
				segCombineFirst(k.dst.f64, k.src.f64, (*[4][4]float64)(&e.pmat[seg.ci]), e.npad, seg.plo, n)
			}
			copy(k.dst.sc[seg.plo:seg.plo+n], k.src.sc[seg.plo:seg.plo+n])
		}
	case kCombineMul:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segCombineMul(k.dst.f32, k.src.f32, &e.pmat32[seg.ci], e.npad, seg.plo, n)
			} else {
				segCombineMul(k.dst.f64, k.src.f64, (*[4][4]float64)(&e.pmat[seg.ci]), e.npad, seg.plo, n)
			}
			addScale(k.dst.sc, k.src.sc, seg.plo, n)
		}
	case kCombineFirstResc:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segCombineFirstResc(k.dst.f32, k.src.f32, &e.pmat32[seg.ci], k.dst.sc, k.src.sc,
					float32(scaleThreshold32), scaleFactor32, e.npad, seg.plo, n)
			} else {
				segCombineFirstResc(k.dst.f64, k.src.f64, (*[4][4]float64)(&e.pmat[seg.ci]), k.dst.sc, k.src.sc,
					scaleThreshold, scaleFactor, e.npad, seg.plo, n)
			}
		}
	case kCombineMulResc:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segCombineMulResc(k.dst.f32, k.src.f32, &e.pmat32[seg.ci], k.dst.sc, k.src.sc,
					float32(scaleThreshold32), scaleFactor32, e.npad, seg.plo, n)
			} else {
				segCombineMulResc(k.dst.f64, k.src.f64, (*[4][4]float64)(&e.pmat[seg.ci]), k.dst.sc, k.src.sc,
					scaleThreshold, scaleFactor, e.npad, seg.plo, n)
			}
		}
	case kCombine2:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segCombine2(k.dst.f32, k.src.f32, k.src2.f32, &e.pmat32[seg.ci], &e.pmat32B[seg.ci],
					k.dst.sc, k.src.sc, k.src2.sc, float32(scaleThreshold32), scaleFactor32, e.npad, seg.plo, n)
			} else if e.bc2 != nil {
				combine2F64(k.dst.f64, k.src.f64, k.src2.f64,
					(*[4][4]float64)(&e.pmat[seg.ci]), (*[4][4]float64)(&e.pmatB[seg.ci]),
					&e.bc2[seg.ci], k.dst.sc, k.src.sc, k.src2.sc, e.npad, seg.plo, n)
			} else {
				segCombine2(k.dst.f64, k.src.f64, k.src2.f64,
					(*[4][4]float64)(&e.pmat[seg.ci]), (*[4][4]float64)(&e.pmatB[seg.ci]),
					k.dst.sc, k.src.sc, k.src2.sc, scaleThreshold, scaleFactor, e.npad, seg.plo, n)
			}
		}
	case kEdgeLnL:
		total := 0.0
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				total = segEdgeLnL(k.a.f32, k.b.f32, k.a.sc, k.b.sc, e.weights,
					&e.pmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n, total)
			} else {
				total = segEdgeLnL(k.a.f64, k.b.f64, k.a.sc, k.b.sc, e.weights,
					&e.pmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n, total)
			}
		}
		e.shLnL[s] = total
	case kDeriv:
		var acc derivAcc
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				acc = segDeriv(k.a.f32, k.b.f32, k.a.sc, k.b.sc, e.weights,
					&e.pmat[seg.ci], &e.dmat[seg.ci], &e.ddmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n, acc)
			} else {
				acc = segDeriv(k.a.f64, k.b.f64, k.a.sc, k.b.sc, e.weights,
					&e.pmat[seg.ci], &e.dmat[seg.ci], &e.ddmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n, acc)
			}
		}
		e.shD1[s], e.shD2[s], e.shLnL[s] = acc.d1, acc.d2, acc.lnL
	case kDerivGrad:
		var acc gradAcc
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				acc = segDerivGrad(k.a.f32, k.b.f32, e.weights,
					&e.pmat[seg.ci], &e.dmat[seg.ci], &e.ddmat[seg.ci], freqs, e.npad, seg.plo, n, acc)
			} else {
				acc = segDerivGrad(k.a.f64, k.b.f64, e.weights,
					&e.pmat[seg.ci], &e.dmat[seg.ci], &e.ddmat[seg.ci], freqs, e.npad, seg.plo, n, acc)
			}
		}
		e.shD1[s], e.shD2[s] = acc.d1, acc.d2
	case kSiteLnL:
		for _, seg := range segs {
			n := seg.hi - seg.lo
			if e.prec == Float32 {
				segSiteLnL(k.a.f32, k.b.f32, k.a.sc, k.b.sc, e.origOfPad, k.out,
					&e.pmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n)
			} else {
				segSiteLnL(k.a.f64, k.b.f64, k.a.sc, k.b.sc, e.origOfPad, k.out,
					&e.pmat[seg.ci], freqs, e.logScaleV, e.npad, seg.plo, n)
			}
		}
	}
}
