package likelihood

import (
	"math"
	"sync"
	"sync/atomic"
)

// Multi-core kernels: the pattern dimension of every inner loop —
// pruning combines, rescaling, the root log-likelihood sum, and the
// Newton first/second-derivative sums — is data-parallel, so the engine
// cuts the permuted pattern range into fixed shards and runs each kernel
// shard-by-shard on a persistent per-engine goroutine pool.
//
// Determinism contract: the shard layout is a pure function of the data
// (pattern count and rate-class blocks), never of the thread count, and
// reductions accumulate one partial per shard which the caller sums in
// shard index order. Threads therefore only changes which goroutine runs
// a shard, not a single floating-point operation or its order, so
// Threads: N is bit-identical to Threads: 1 for every kernel.

const (
	// minShardPatterns is the smallest pattern range worth a shard; tiny
	// data sets stay single-sharded and pay no reduction restructuring.
	minShardPatterns = 64
	// maxShards bounds the layout (and the per-shard partial arrays).
	maxShards = 16
)

// shardSeg is a run of patterns within one rate-class block, so kernels
// still hoist the transition-matrix lookup out of the pattern loop.
type shardSeg struct {
	ci     int // rate class index
	lo, hi int // permuted pattern index range [lo, hi)
}

// shard is one contiguous pattern range, pre-cut into class segments.
type shard struct {
	segs []shardSeg
}

// buildShards cuts [0, npat) into near-equal contiguous ranges aligned
// with the class blocks: a shard boundary inside a block splits it into
// segments that each stay within one class.
func buildShards(blocks []classBlock, npat int) []shard {
	n := npat / minShardPatterns
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	shards := make([]shard, n)
	for s := 0; s < n; s++ {
		lo, hi := s*npat/n, (s+1)*npat/n
		for _, blk := range blocks {
			slo, shi := max(lo, blk.lo), min(hi, blk.hi)
			if slo < shi {
				shards[s].segs = append(shards[s].segs, shardSeg{ci: blk.ci, lo: slo, hi: shi})
			}
		}
	}
	return shards
}

// Kernel opcodes for the engine-held dispatch arguments. Keeping the
// arguments in a struct owned by the engine (rather than a closure per
// call) is what makes threaded dispatch allocation-free.
const (
	kCombineFirst = iota
	kCombineMul
	kRescale
	kEdgeLnL
	kDeriv
	kSiteLnL
)

// kernArgs carries one kernel invocation's inputs. Written by the
// dispatching caller before the pool wakes, read by the shard workers;
// the wake channel send and WaitGroup wait order the accesses.
type kernArgs struct {
	op         int
	dst, src   []float64
	dsc, ssc   []int32
	aclv, bclv []float64
	asc, bsc   []int32
	out        []float64
}

// shardPool runs kernel shards on threads-1 persistent goroutines plus
// the calling goroutine. Shards are claimed by an atomic counter, so a
// slow core never strands work pinned to it.
type shardPool struct {
	e    *Engine
	wake []chan struct{}
	quit chan struct{}
	next atomic.Int64
	wg   sync.WaitGroup
}

func newShardPool(e *Engine, workers int) *shardPool {
	p := &shardPool{e: e, quit: make(chan struct{})}
	p.wake = make([]chan struct{}, workers)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(p.wake[i])
	}
	return p
}

func (p *shardPool) worker(wake chan struct{}) {
	for {
		select {
		case <-p.quit:
			return
		case <-wake:
			p.drain()
			p.wg.Done()
		}
	}
}

// drain claims and runs shards until the counter runs past the layout.
func (p *shardPool) drain() {
	n := len(p.e.shards)
	for {
		s := int(p.next.Add(1)) - 1
		if s >= n {
			return
		}
		p.e.shardKernel(s)
	}
}

// dispatch runs the engine's current kernel over all shards, caller
// participating, and returns when every shard completed.
func (p *shardPool) dispatch() {
	p.next.Store(0)
	p.wg.Add(len(p.wake))
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
}

func (p *shardPool) stop() { close(p.quit) }

// SetThreads sizes the engine's kernel pool to n threads (the caller
// plus n-1 persistent goroutines); n <= 1 restores single-threaded
// operation. It must not be called while an evaluation is in progress.
// Results are bit-identical for every n. Returns the engine for chaining.
func (e *Engine) SetThreads(n int) *Engine {
	if n < 1 {
		n = 1
	}
	if n == e.threads {
		return e
	}
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	e.threads = n
	if n > 1 {
		e.pool = newShardPool(e, n-1)
	}
	return e
}

// Threads reports the engine's configured kernel thread count.
func (e *Engine) Threads() int { return e.threads }

// Close releases the engine's kernel pool goroutines. It is a no-op for
// single-threaded engines; threaded engines should be closed when no
// longer needed.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
		e.threads = 1
	}
}

// runShards executes the kernel described by e.kern over every shard.
func (e *Engine) runShards() {
	if e.pool == nil {
		for s := range e.shards {
			e.shardKernel(s)
		}
		return
	}
	e.stats.ShardDispatches++
	e.pool.dispatch()
}

// shardKernel runs the current kernel over shard s. It is the only code
// executed by pool goroutines; everything it touches is either read-only
// during a dispatch (transition matrices, tips, weights) or partitioned
// by shard (CLV ranges, per-shard partials).
func (e *Engine) shardKernel(s int) {
	k := &e.kern
	segs := e.shards[s].segs
	switch k.op {
	case kCombineFirst:
		dst, dsc, src, ssc := k.dst, k.dsc, k.src, k.ssc
		for _, seg := range segs {
			pm := &e.pmat[seg.ci]
			for p := seg.lo; p < seg.hi; p++ {
				c0, c1, c2, c3 := src[p*4], src[p*4+1], src[p*4+2], src[p*4+3]
				for j := 0; j < 4; j++ {
					dst[p*4+j] = pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				dsc[p] = ssc[p]
			}
		}
	case kCombineMul:
		dst, dsc, src, ssc := k.dst, k.dsc, k.src, k.ssc
		for _, seg := range segs {
			pm := &e.pmat[seg.ci]
			for p := seg.lo; p < seg.hi; p++ {
				c0, c1, c2, c3 := src[p*4], src[p*4+1], src[p*4+2], src[p*4+3]
				for j := 0; j < 4; j++ {
					dst[p*4+j] *= pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				dsc[p] += ssc[p]
			}
		}
	case kRescale:
		clv, sc := k.dst, k.dsc
		for _, seg := range segs {
			for p := seg.lo; p < seg.hi; p++ {
				m := clv[p*4]
				for j := 1; j < 4; j++ {
					if clv[p*4+j] > m {
						m = clv[p*4+j]
					}
				}
				if m < scaleThreshold && m > 0 {
					for j := 0; j < 4; j++ {
						clv[p*4+j] *= scaleFactor
					}
					sc[p]++
				}
			}
		}
	case kEdgeLnL:
		e.shardEdgeLnL(s, segs)
	case kDeriv:
		e.shardDeriv(s, segs)
	case kSiteLnL:
		aclv, asc, bclv, bsc, out := k.aclv, k.asc, k.bclv, k.bsc, k.out
		for _, seg := range segs {
			pm := &e.pmat[seg.ci]
			for p := seg.lo; p < seg.hi; p++ {
				b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
				lkl := 0.0
				for i := 0; i < 4; i++ {
					lkl += e.freqs[i] * aclv[p*4+i] *
						(pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
				}
				if lkl <= 0 {
					lkl = math.SmallestNonzeroFloat64
				}
				out[e.perm[p]] = math.Log(lkl) - float64(asc[p]+bsc[p])*logScale
			}
		}
	}
}

// shardEdgeLnL accumulates shard s's root log-likelihood partial into
// e.shLnL[s]; the caller sums the partials in shard index order.
func (e *Engine) shardEdgeLnL(s int, segs []shardSeg) {
	k := &e.kern
	aclv, asc, bclv, bsc := k.aclv, k.asc, k.bclv, k.bsc
	total := 0.0
	for _, seg := range segs {
		pm := &e.pmat[seg.ci]
		for p := seg.lo; p < seg.hi; p++ {
			b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
			lkl := 0.0
			for i := 0; i < 4; i++ {
				lkl += e.freqs[i] * aclv[p*4+i] *
					(pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
			}
			if lkl <= 0 {
				lkl = math.SmallestNonzeroFloat64
			}
			total += e.weights[p] * (math.Log(lkl) - float64(asc[p]+bsc[p])*logScale)
		}
	}
	e.shLnL[s] = total
}

// shardDeriv accumulates shard s's Newton derivative partials into
// e.shD1[s], e.shD2[s], e.shLnL[s].
func (e *Engine) shardDeriv(s int, segs []shardSeg) {
	k := &e.kern
	aclv, asc, bclv, bsc := k.aclv, k.asc, k.bclv, k.bsc
	d1, d2, lnL := 0.0, 0.0, 0.0
	for _, seg := range segs {
		pm, dm, ddm := &e.pmat[seg.ci], &e.dmat[seg.ci], &e.ddmat[seg.ci]
		for p := seg.lo; p < seg.hi; p++ {
			b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
			var l, dl, ddl float64
			for i := 0; i < 4; i++ {
				ai := e.freqs[i] * aclv[p*4+i]
				l += ai * (pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
				dl += ai * (dm[i][0]*b0 + dm[i][1]*b1 + dm[i][2]*b2 + dm[i][3]*b3)
				ddl += ai * (ddm[i][0]*b0 + ddm[i][1]*b1 + ddm[i][2]*b2 + ddm[i][3]*b3)
			}
			if l <= 0 {
				l = math.SmallestNonzeroFloat64
			}
			w := e.weights[p]
			r := dl / l
			d1 += w * r
			d2 += w * (ddl/l - r*r)
			lnL += w * (math.Log(l) - float64(asc[p]+bsc[p])*logScale)
		}
	}
	e.shD1[s], e.shD2[s], e.shLnL[s] = d1, d2, lnL
}
