// Package experiments regenerates every table and figure of the paper's
// evaluation (and the ablations DESIGN.md calls out). cmd/scaling is a
// thin CLI over this package, and the repository benchmarks call the same
// entry points, so "the numbers in EXPERIMENTS.md" always have a single
// implementation.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/spsim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// PaperProcs is the processor axis of Figures 3 and 4.
var PaperProcs = []int{1, 4, 8, 16, 32, 64}

// TreeCountRow is one row of the paper's §1.1 tree-count examples.
type TreeCountRow struct {
	Taxa      int
	Formatted string
	Log10     float64
}

// TreeCounts reproduces §1.1: the number of unrooted bifurcating trees
// for 50, 100, and 150 taxa (plus context rows).
func TreeCounts() ([]TreeCountRow, error) {
	var rows []TreeCountRow
	for _, n := range []int{10, 20, 50, 100, 150} {
		s, err := tree.FormatTopologyCount(n)
		if err != nil {
			return nil, err
		}
		lg, err := tree.NumTopologiesLog10(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TreeCountRow{Taxa: n, Formatted: s, Log10: lg})
	}
	return rows, nil
}

// RenderTreeCounts renders the tree-count table.
func RenderTreeCounts(rows []TreeCountRow) string {
	tbl := &stats.Table{Headers: []string{"taxa", "unrooted trees", "log10"}}
	for _, r := range rows {
		tbl.Add(fmt.Sprintf("%d", r.Taxa), r.Formatted, fmt.Sprintf("%.1f", r.Log10))
	}
	return "Number of bifurcating unrooted trees (paper §1.1)\n" + tbl.String()
}

// DatasetShape captures what the scaling experiments need to know about
// one of the paper's data sets.
type DatasetShape struct {
	Name     string
	Taxa     int
	Sites    int
	Patterns int
}

// PaperShapes generates the three paper-dimension synthetic data sets and
// reports their compressed pattern counts.
func PaperShapes(seed int64) ([]DatasetShape, error) {
	var out []DatasetShape
	for _, p := range []simulate.PaperPreset{simulate.Preset50, simulate.Preset101, simulate.Preset150} {
		opt, err := simulate.PaperOptions(p, seed)
		if err != nil {
			return nil, err
		}
		ds, err := simulate.New(opt)
		if err != nil {
			return nil, err
		}
		pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, DatasetShape{
			Name:     string(p),
			Taxa:     opt.Taxa,
			Sites:    opt.Sites,
			Patterns: pat.NumPatterns(),
		})
	}
	return out, nil
}

// ScalingOptions configure the Figure 3/4 reproduction.
type ScalingOptions struct {
	// Shapes are the data sets (nil = the paper's three, seeded).
	Shapes []DatasetShape
	// Jumbles is the number of random orderings averaged per point
	// (the paper used 10).
	Jumbles int
	// Procs is the processor axis (nil = PaperProcs).
	Procs []int
	// Extent is the rearrangement setting (paper: 5).
	Extent int
	// Seed drives the synthetic schedules.
	Seed int64
	// Cluster is the machine model (zero Processors field is ignored).
	Cluster spsim.Cluster
	// Cost overrides the task cost model (zero = default).
	Cost spsim.CostModel
}

func (o ScalingOptions) withDefaults() (ScalingOptions, error) {
	if o.Jumbles < 1 {
		o.Jumbles = 10
	}
	if len(o.Procs) == 0 {
		o.Procs = PaperProcs
	}
	if o.Extent == 0 {
		o.Extent = 5
	}
	if o.Seed == 0 {
		o.Seed = 2001
	}
	if o.Cluster == (spsim.Cluster{}) {
		o.Cluster = spsim.DefaultCluster(0)
	}
	if len(o.Shapes) == 0 {
		shapes, err := PaperShapes(o.Seed)
		if err != nil {
			return o, err
		}
		o.Shapes = shapes
	}
	return o, nil
}

// ScalingPoint is one (dataset, processor count) cell of Figures 3/4.
type ScalingPoint struct {
	Dataset    string
	Processors int
	// MeanSeconds averages the jumbles' simulated wall times.
	MeanSeconds float64
	// StdSeconds is the spread over jumbles.
	StdSeconds float64
	// Speedup is mean serial seconds / mean seconds.
	Speedup float64
	// Efficiency is Speedup / Processors.
	Efficiency float64
}

// Scaling simulates the paper's scaling study: for each data set,
// synthesize one schedule per jumble and sweep the processor axis
// ("For each data set, the same ten randomizations were analyzed for each
// number of processors", §3.1 — the same jumble logs are replayed at
// every P).
func Scaling(opt ScalingOptions) ([]ScalingPoint, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, shape := range opt.Shapes {
		logs := make([]*spsim.RunLog, opt.Jumbles)
		for j := 0; j < opt.Jumbles; j++ {
			logs[j], err = spsim.Synthesize(spsim.Shape{
				Taxa:     shape.Taxa,
				Patterns: shape.Patterns,
				Extent:   opt.Extent,
				Seed:     opt.Seed + int64(1000*j) + int64(shape.Taxa),
				Cost:     opt.Cost,
			})
			if err != nil {
				return nil, err
			}
		}
		serialMean := 0.0
		for _, p := range opt.Procs {
			cl := opt.Cluster
			cl.Processors = p
			var times []float64
			for _, log := range logs {
				res, err := cl.Simulate(log)
				if err != nil {
					return nil, err
				}
				times = append(times, res.TotalSeconds)
			}
			mean := stats.Mean(times)
			if p == 1 {
				serialMean = mean
			}
			sp := 0.0
			if serialMean > 0 {
				sp = serialMean / mean
			}
			out = append(out, ScalingPoint{
				Dataset:     shape.Name,
				Processors:  p,
				MeanSeconds: mean,
				StdSeconds:  stats.StdDev(times),
				Speedup:     sp,
				Efficiency:  stats.Efficiency(sp, p),
			})
		}
	}
	return out, nil
}

// RenderFig3 renders the wall-time view (paper Figure 3): a table plus an
// ASCII log-log chart of time against processors.
func RenderFig3(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("Figure 3: time to complete analysis (average over orderings)\n")
	tbl := &stats.Table{Headers: []string{"dataset", "procs", "time", "stddev"}}
	seriesMap := map[string]*stats.Series{}
	var order []string
	markers := []byte{'a', 'b', 'c', 'd', 'e'}
	for _, p := range points {
		tbl.Add(p.Dataset, fmt.Sprintf("%d", p.Processors),
			stats.FormatDuration(p.MeanSeconds), stats.FormatDuration(p.StdSeconds))
		s, ok := seriesMap[p.Dataset]
		if !ok {
			s = &stats.Series{Label: p.Dataset, Marker: markers[len(order)%len(markers)]}
			seriesMap[p.Dataset] = s
			order = append(order, p.Dataset)
		}
		s.X = append(s.X, float64(p.Processors))
		s.Y = append(s.Y, p.MeanSeconds)
	}
	b.WriteString(tbl.String())
	b.WriteByte('\n')
	var series []stats.Series
	for _, name := range order {
		series = append(series, *seriesMap[name])
	}
	b.WriteString(stats.LogLogChart("time vs processors", "processors", "seconds", series, 64, 18))
	return b.String()
}

// RenderFig4 renders the speedup view (paper Figure 4) with the perfect
// scaling reference line.
func RenderFig4(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("Figure 4: scaling ratios vs the serial program\n")
	tbl := &stats.Table{Headers: []string{"dataset", "procs", "speedup", "efficiency"}}
	seriesMap := map[string]*stats.Series{}
	var order []string
	markers := []byte{'a', 'b', 'c', 'd', 'e'}
	maxP := 1.0
	for _, p := range points {
		tbl.Add(p.Dataset, fmt.Sprintf("%d", p.Processors),
			fmt.Sprintf("%.2f", p.Speedup), fmt.Sprintf("%.3f", p.Efficiency))
		s, ok := seriesMap[p.Dataset]
		if !ok {
			s = &stats.Series{Label: p.Dataset, Marker: markers[len(order)%len(markers)]}
			seriesMap[p.Dataset] = s
			order = append(order, p.Dataset)
		}
		s.X = append(s.X, float64(p.Processors))
		s.Y = append(s.Y, p.Speedup)
		if float64(p.Processors) > maxP {
			maxP = float64(p.Processors)
		}
	}
	b.WriteString(tbl.String())
	b.WriteByte('\n')
	series := []stats.Series{{Label: "perfect scaling", Marker: '.',
		X: []float64{1, maxP}, Y: []float64{1, maxP}}}
	for _, name := range order {
		series = append(series, *seriesMap[name])
	}
	b.WriteString(stats.LogLogChart("speedup vs processors", "processors", "speedup", series, 64, 18))
	return b.String()
}

// Falloff extends the sweep past the paper's 64 processors to show the
// predicted efficiency fall-off at 100-200 processors (§3.2: "the
// scalability will likely fall off at between 100 and 200 processors").
func Falloff(seed int64, jumbles int) ([]ScalingPoint, error) {
	return Scaling(ScalingOptions{
		Jumbles: jumbles,
		Procs:   []int{1, 16, 64, 96, 128, 192, 256, 384, 512},
		Seed:    seed,
	})
}

// ExtentComparison is the §3.2 ablation: extent 1 scales worse than
// extent 5 "because there is a smaller total amount of work done between
// synchronizations". It returns points labeled by extent for one dataset.
func ExtentComparison(seed int64, jumbles int) ([]ScalingPoint, error) {
	shapes, err := PaperShapes(seed)
	if err != nil {
		return nil, err
	}
	shape := shapes[0] // the 50-taxon set
	var all []ScalingPoint
	for _, extent := range []int{1, 5} {
		pts, err := Scaling(ScalingOptions{
			Shapes:  []DatasetShape{{Name: fmt.Sprintf("%s extent=%d", shape.Name, extent), Taxa: shape.Taxa, Sites: shape.Sites, Patterns: shape.Patterns}},
			Jumbles: jumbles,
			Extent:  extent,
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	return all, nil
}

// SpeculativeComparison performs the study the paper planned (§3.2):
// does Ceron-style speculative evaluation — overlapping a rearrangement
// round with the next round when no improvement is (correctly) predicted
// — enhance fastDNAml's scalability? It returns points for the 50-taxon
// workload with speculation off and on.
func SpeculativeComparison(seed int64, jumbles int) ([]ScalingPoint, error) {
	shapes, err := PaperShapes(seed)
	if err != nil {
		return nil, err
	}
	shape := shapes[0]
	var all []ScalingPoint
	for _, spec := range []bool{false, true} {
		cl := spsim.DefaultCluster(0)
		cl.Speculative = spec
		name := shape.Name + " speculative=off"
		if spec {
			name = shape.Name + " speculative=on"
		}
		pts, err := Scaling(ScalingOptions{
			Shapes:  []DatasetShape{{Name: name, Taxa: shape.Taxa, Sites: shape.Sites, Patterns: shape.Patterns}},
			Jumbles: jumbles,
			Extent:  5,
			Seed:    seed,
			Cluster: cl,
		})
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	return all, nil
}

// WallclockRow summarizes the §6 wall-clock claims.
type WallclockRow struct {
	Label string
	Value string
}

// Wallclock reproduces the paper's concluding arithmetic for the
// 150-taxon data set: serial days per ordering, 64-processor hours per
// ordering, and the 200-ordering totals ("about a month running
// continually on 64 processors").
func Wallclock(seed int64) ([]WallclockRow, string, error) {
	shapes, err := PaperShapes(seed)
	if err != nil {
		return nil, "", err
	}
	shape := shapes[2] // 150 taxa
	log, err := spsim.Synthesize(spsim.Shape{
		Taxa: shape.Taxa, Patterns: shape.Patterns, Extent: 5, Seed: seed,
	})
	if err != nil {
		return nil, "", err
	}
	cl := spsim.DefaultCluster(1)
	serial, err := cl.Simulate(log)
	if err != nil {
		return nil, "", err
	}
	cl64 := spsim.DefaultCluster(64)
	par, err := cl64.Simulate(log)
	if err != nil {
		return nil, "", err
	}
	rows := []WallclockRow{
		{"serial, one ordering", stats.FormatDuration(serial.TotalSeconds)},
		{"serial, 200 orderings", stats.FormatDuration(200 * serial.TotalSeconds)},
		{"64 processors, one ordering", stats.FormatDuration(par.TotalSeconds)},
		{"64 processors, 200 orderings", stats.FormatDuration(200 * par.TotalSeconds)},
		{"speedup at 64 processors", fmt.Sprintf("%.1fx", serial.TotalSeconds/par.TotalSeconds)},
	}
	tbl := &stats.Table{Headers: []string{"scenario (150 taxa)", "simulated"}}
	for _, r := range rows {
		tbl.Add(r.Label, r.Value)
	}
	note := "Paper §6: ~9 days serial per ordering; <4 h on 64 processors;\n" +
		"200 orderings ~ 5 years serial vs ~ 1 month on 64 processors.\n"
	return rows, note + tbl.String(), nil
}

// FlowDemo runs a small real parallel search with the monitor attached
// and writes the message-flow summary (the living version of Figure 2).
func FlowDemo(w io.Writer, seed int64) error {
	ds, err := simulate.New(simulate.Options{Taxa: 8, Sites: 200, Seed: seed})
	if err != nil {
		return err
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		return err
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		return err
	}
	cfg := mlsearch.Config{Taxa: ds.Alignment.Names, Patterns: pat, Model: m, Seed: seed, RearrangeExtent: 1}
	out, err := mlsearch.Run(cfg, mlsearch.RunOptions{
		Transport:   mlsearch.Local,
		Workers:     3,
		WithMonitor: true,
		MonitorOut:  w,
	})
	if err != nil {
		return err
	}
	res := out.Results[0]
	fmt.Fprintf(w, "\nparallel program flow (paper Fig 2): master -> foreman -> workers\n")
	fmt.Fprintf(w, "rounds: %d   tasks: %d   lnL: %.4f\n", len(res.Rounds), res.TotalTasks, res.LnL)
	fmt.Fprintf(w, "dispatches: %d   results: %d\n", out.Monitor.Dispatches, out.Monitor.Results)
	for worker, n := range out.Monitor.TasksPerWorker {
		fmt.Fprintf(w, "  worker rank %d evaluated %d trees\n", worker, n)
	}
	return nil
}
