package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/spsim"
)

func TestTreeCountsTable(t *testing.T) {
	rows, err := TreeCounts()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTreeCounts(rows)
	// The paper's quoted values must appear.
	for _, want := range []string{"2.8 x 10^74", "1.7 x 10^182", "4.2 x 10^301"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// smallShapes avoids regenerating the full paper data sets in unit tests.
func smallShapes() []DatasetShape {
	return []DatasetShape{
		{Name: "miniA", Taxa: 30, Sites: 400, Patterns: 300},
		{Name: "miniB", Taxa: 45, Sites: 300, Patterns: 250},
	}
}

func TestScalingReproducesPaperShape(t *testing.T) {
	pts, err := Scaling(ScalingOptions{
		Shapes:  smallShapes(),
		Jumbles: 3,
		Extent:  5,
		Seed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ScalingPoint{}
	for _, p := range pts {
		byKey[p.Dataset+string(rune('0'+p.Processors%10))] = p
	}
	for _, shape := range smallShapes() {
		var serial, four, sixteen, sixtyFour ScalingPoint
		for _, p := range pts {
			if p.Dataset != shape.Name {
				continue
			}
			switch p.Processors {
			case 1:
				serial = p
			case 4:
				four = p
			case 16:
				sixteen = p
			case 64:
				sixtyFour = p
			}
		}
		if serial.Speedup != 1 {
			t.Errorf("%s: serial speedup %g", shape.Name, serial.Speedup)
		}
		if four.Speedup >= 1 {
			t.Errorf("%s: 4-proc speedup %g, want < 1", shape.Name, four.Speedup)
		}
		if sixtyFour.Speedup <= sixteen.Speedup {
			t.Errorf("%s: speedup not growing 16->64", shape.Name)
		}
		if sixtyFour.MeanSeconds >= serial.MeanSeconds {
			t.Errorf("%s: 64 procs not faster than serial", shape.Name)
		}
	}
	// Rendering includes tables and charts.
	f3 := RenderFig3(pts)
	f4 := RenderFig4(pts)
	if !strings.Contains(f3, "Figure 3") || !strings.Contains(f3, "miniA") {
		t.Error("Fig 3 rendering incomplete")
	}
	if !strings.Contains(f4, "perfect scaling") {
		t.Error("Fig 4 rendering missing the perfect-scaling line")
	}
}

func TestExtentComparisonShape(t *testing.T) {
	// Use small custom shapes through Scaling directly to keep the test
	// fast; the extent machinery is the same.
	mk := func(extent int) []ScalingPoint {
		pts, err := Scaling(ScalingOptions{
			Shapes:  []DatasetShape{{Name: "m", Taxa: 30, Sites: 300, Patterns: 250}},
			Jumbles: 3,
			Extent:  extent,
			Procs:   []int{1, 32},
			Seed:    7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	e1 := mk(1)
	e5 := mk(5)
	var s1, s5 float64
	for _, p := range e1 {
		if p.Processors == 32 {
			s1 = p.Speedup
		}
	}
	for _, p := range e5 {
		if p.Processors == 32 {
			s5 = p.Speedup
		}
	}
	if s5 <= s1 {
		t.Errorf("extent 5 speedup %.2f should exceed extent 1 speedup %.2f (paper §3.2)", s5, s1)
	}
}

func TestMeasuredSweepShape(t *testing.T) {
	pts, err := MeasuredSweep(10, 150, 1, 3, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Errorf("serial speedup %g", pts[0].Speedup)
	}
	// The overhead-free measured sweep puts 4 processors (1 worker) at
	// parity with serial; it must never beat it.
	if pts[1].Speedup > 1+1e-9 {
		t.Errorf("4-proc speedup %g, want <= 1", pts[1].Speedup)
	}
	if pts[2].Speedup <= pts[1].Speedup {
		t.Error("16 procs not faster than 4")
	}
}

func TestCalibrateProducesSaneModel(t *testing.T) {
	cal, err := Calibrate(5)
	if err != nil {
		t.Fatal(err)
	}
	c := cal.Cost
	if c.QuickUnitsPerTaxonPattern <= 0 || c.SmoothUnitsPerTaxonPattern <= 0 {
		t.Fatalf("non-positive coefficients: %+v", c)
	}
	if c.SmoothUnitsPerTaxonPattern <= c.QuickUnitsPerTaxonPattern {
		t.Errorf("full smoothing (%.0f) should cost more than quick scoring (%.0f)",
			c.SmoothUnitsPerTaxonPattern, c.QuickUnitsPerTaxonPattern)
	}
	if c.Sigma <= 0 || c.Sigma > 3 {
		t.Errorf("sigma %.3f implausible", c.Sigma)
	}
	if !strings.Contains(cal.Report, "calibration") {
		t.Error("report missing")
	}
	// The committed defaults should be within an order of magnitude of a
	// fresh fit (they were derived the same way).
	def := spsim.DefaultCostModel()
	ratio := c.QuickUnitsPerTaxonPattern / def.QuickUnitsPerTaxonPattern
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("fitted quick coefficient %.1f far from committed default %.1f",
			c.QuickUnitsPerTaxonPattern, def.QuickUnitsPerTaxonPattern)
	}
}

func TestWallclockRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 150-taxon dataset")
	}
	rows, text, err := Wallclock(2001)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(text, "64 processors") {
		t.Error("rendering incomplete")
	}
}

func TestFlowDemo(t *testing.T) {
	var buf bytes.Buffer
	if err := FlowDemo(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parallel program flow") || !strings.Contains(out, "worker rank") {
		t.Errorf("flow demo output incomplete:\n%s", out)
	}
}

// TestThroughputPartitioning: the §3.2 trade-off — the serial farm wins
// raw campaign throughput, but parallel-within-ordering partitions
// deliver the first result orders of magnitude sooner.
func TestThroughputPartitioning(t *testing.T) {
	pts, err := Throughput(ThroughputOptions{
		Shape:      DatasetShape{Name: "m", Taxa: 40, Sites: 500, Patterns: 400},
		Orderings:  200,
		Processors: 64,
		Extent:     5,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bestCount int
	var full, farm ThroughputPoint
	for _, p := range pts {
		if p.Best {
			bestCount++
		}
		if p.Groups == 1 {
			full = p
		}
		if p.Groups == 64 {
			farm = p
		}
	}
	if bestCount != 1 {
		t.Errorf("%d best partitions", bestCount)
	}
	if full.Groups != 1 || farm.Groups != 64 {
		t.Fatalf("missing extremes: %+v", pts)
	}
	// First result arrives much sooner with full parallelism.
	if full.FirstResultSeconds >= farm.FirstResultSeconds/5 {
		t.Errorf("full parallel first result %.0fs not much sooner than serial farm %.0fs",
			full.FirstResultSeconds, farm.FirstResultSeconds)
	}
	// Rendering sanity.
	out := RenderThroughput(pts, 200, 64)
	if !strings.Contains(out, "best throughput") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}
