package experiments

import (
	"fmt"
	"math"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/spsim"
	"repro/internal/stats"
)

// Calibration ties the synthetic schedules to reality: real (small)
// searches are measured, and the cost model coefficients that the
// synthesizer uses for paper-scale runs are fitted from them.
type Calibration struct {
	// Cost is the fitted model.
	Cost spsim.CostModel
	// ImproveFraction is the observed share of rearrangement rounds
	// that found a better tree, per data set size.
	ImproveFraction map[int]float64
	// Report is a human-readable summary.
	Report string
}

// Calibrate runs real serial searches over small simulated data sets and
// fits the synthetic cost model (see spsim.DefaultCostModel for the
// committed values).
func Calibrate(seed int64) (*Calibration, error) {
	sizes := []int{12, 16, 20}
	const sites = 400

	var quickRatios, smoothRatios, logQuick []float64
	improves := map[int]float64{}

	for _, taxa := range sizes {
		ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed + int64(taxa)})
		if err != nil {
			return nil, err
		}
		pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
		if err != nil {
			return nil, err
		}
		m, err := mlsearch.NewDefaultModel(pat)
		if err != nil {
			return nil, err
		}
		cfg := mlsearch.Config{Taxa: ds.Alignment.Names, Patterns: pat, Model: m, Seed: seed, RearrangeExtent: 2}
		out, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial})
		if err != nil {
			return nil, err
		}
		res := out.Results[0]

		rearr, improved := 0, 0
		npat := float64(pat.NumPatterns())
		for i, round := range res.Rounds {
			scale := float64(round.TaxaInTree) * npat
			switch round.Kind {
			case mlsearch.RoundAdd, mlsearch.RoundRearrange, mlsearch.RoundFinal:
				for _, t := range round.Tasks {
					ratio := float64(t.Ops) / scale
					quickRatios = append(quickRatios, ratio)
					logQuick = append(logQuick, math.Log(ratio))
				}
				if round.Kind != mlsearch.RoundAdd {
					rearr++
					if i+1 < len(res.Rounds) && res.Rounds[i+1].Kind == mlsearch.RoundSmooth {
						improved++
					}
				}
			case mlsearch.RoundSmooth, mlsearch.RoundInit:
				for _, t := range round.Tasks {
					smoothRatios = append(smoothRatios, float64(t.Ops)/scale)
				}
			}
		}
		if rearr > 0 {
			improves[taxa] = float64(improved) / float64(rearr)
		}
	}
	if len(quickRatios) == 0 || len(smoothRatios) == 0 {
		return nil, fmt.Errorf("experiments: calibration produced no samples")
	}

	cost := spsim.CostModel{
		QuickUnitsPerTaxonPattern:  stats.Mean(quickRatios),
		SmoothUnitsPerTaxonPattern: stats.Mean(smoothRatios),
		Sigma:                      stats.StdDev(logQuick),
		NewickBytesPerTaxon:        22,
	}

	tbl := &stats.Table{Headers: []string{"coefficient", "fitted"}}
	tbl.Add("quick units / (taxa x patterns)", fmt.Sprintf("%.1f", cost.QuickUnitsPerTaxonPattern))
	tbl.Add("smooth units / (taxa x patterns)", fmt.Sprintf("%.1f", cost.SmoothUnitsPerTaxonPattern))
	tbl.Add("lognormal sigma", fmt.Sprintf("%.3f", cost.Sigma))
	report := "Cost model calibration from measured serial searches\n" + tbl.String()
	report += "\nrearrangement rounds that improved the tree:\n"
	for _, taxa := range sizes {
		report += fmt.Sprintf("  %d taxa: %.0f%%\n", taxa, 100*improves[taxa])
	}
	report += fmt.Sprintf("\ncommitted defaults (spsim.DefaultCostModel): quick=%.0f smooth=%.0f sigma=%.2f\n",
		spsim.DefaultCostModel().QuickUnitsPerTaxonPattern,
		spsim.DefaultCostModel().SmoothUnitsPerTaxonPattern,
		spsim.DefaultCostModel().Sigma)
	return &Calibration{Cost: cost, ImproveFraction: improves, Report: report}, nil
}

// MeasuredSweep runs a real serial search on a small data set, converts
// its measured round log into a simulator schedule, and sweeps the
// processor axis — the bridge that validates the synthetic schedules'
// shape against reality.
func MeasuredSweep(taxa, sites int, extent int, seed int64, procs []int) ([]ScalingPoint, error) {
	if len(procs) == 0 {
		procs = PaperProcs
	}
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed})
	if err != nil {
		return nil, err
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		return nil, err
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		return nil, err
	}
	cfg := mlsearch.Config{Taxa: ds.Alignment.Names, Patterns: pat, Model: m, Seed: seed, RearrangeExtent: extent}
	serialOut, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial})
	if err != nil {
		return nil, err
	}
	res := serialOut.Results[0]
	log := spsim.FromSearchResult(res, fmt.Sprintf("measured %d taxa", taxa))

	// A data set this small has sub-second tasks, so the paper-scale
	// message and startup overheads would swamp it; zero them to isolate
	// what the measured schedule itself allows — the round-structure
	// ceiling (few tasks per round, serial smoothing rounds) that also
	// causes the paper's predicted fall-off at high processor counts.
	cl := spsim.DefaultCluster(0)
	cl.Startup = 0
	cl.WorkerTaskOverhead = 0
	cl.DispatchLatency = 0
	cl.ReturnLatency = 0
	cl.MasterByteTime = 0
	pts, err := cl.Sweep(log, procs)
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, p := range pts {
		out = append(out, ScalingPoint{
			Dataset:     log.Label,
			Processors:  p.Processors,
			MeanSeconds: p.Seconds,
			Speedup:     p.Speedup,
			Efficiency:  p.Efficiency,
		})
	}
	return out, nil
}
