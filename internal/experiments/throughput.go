package experiments

import (
	"fmt"

	"repro/internal/spsim"
	"repro/internal/stats"
)

// Throughput partitioning: the paper discusses why one would parallelize
// within a single random ordering at all, given that whole orderings are
// embarrassingly parallel, and concludes that "there will be a point
// where overall throughput is best achieved by simultaneously analyzing
// multiple orderings of taxa, each on a subset of the total number of
// processors" (§3.2). This experiment finds that point: J orderings on P
// processors, split into g concurrent groups of P/g processors each.

// ThroughputPoint is one partitioning's simulated campaign time.
type ThroughputPoint struct {
	// Groups is the number of orderings run concurrently.
	Groups int
	// ProcsPerGroup is the processor share of each group.
	ProcsPerGroup int
	// CampaignSeconds is the simulated time to finish all orderings.
	CampaignSeconds float64
	// FirstResultSeconds is when the first ordering's tree arrives —
	// the paper's argument for parallelizing within an ordering: "the
	// practicing biologist benefits from seeing some results relatively
	// quickly" (§3.2).
	FirstResultSeconds float64
	// Best marks the partitioning with the shortest campaign.
	Best bool
}

// ThroughputOptions configure the study.
type ThroughputOptions struct {
	// Shape is the data set (zero value = the paper's 50-taxon set).
	Shape DatasetShape
	// Orderings is the campaign size (default 200, the paper's §6
	// example).
	Orderings int
	// Processors is the total machine size (default 64).
	Processors int
	// Extent is the rearrangement setting (default 5).
	Extent int
	// Seed drives schedule synthesis.
	Seed int64
}

// Throughput simulates the campaign under every divisor partitioning of
// the machine and reports which wins. Groups must leave each partition at
// least 1 processor; the serial extreme (each ordering on 1 processor,
// i.e. as many groups as processors) is included.
func Throughput(opt ThroughputOptions) ([]ThroughputPoint, error) {
	if opt.Orderings <= 0 {
		opt.Orderings = 200
	}
	if opt.Processors <= 0 {
		opt.Processors = 64
	}
	if opt.Extent == 0 {
		opt.Extent = 5
	}
	if opt.Seed == 0 {
		opt.Seed = 2001
	}
	if opt.Shape.Taxa == 0 {
		shapes, err := PaperShapes(opt.Seed)
		if err != nil {
			return nil, err
		}
		opt.Shape = shapes[0]
	}

	// One representative schedule; every group runs statistically
	// identical work, so the campaign time is ceil(J/g) * T(P/g).
	log, err := spsim.Synthesize(spsim.Shape{
		Taxa:     opt.Shape.Taxa,
		Patterns: opt.Shape.Patterns,
		Extent:   opt.Extent,
		Seed:     opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	var out []ThroughputPoint
	for g := 1; g <= opt.Processors; g++ {
		procs := opt.Processors / g
		if procs < 1 || g*procs != opt.Processors {
			continue // only exact partitions
		}
		cl := spsim.DefaultCluster(procs)
		if procs < 4 {
			// Partitions too small for the full control-process layout
			// run the serial program per ordering.
			cl.Processors = 1
		}
		res, err := cl.Simulate(log)
		if err != nil {
			return nil, err
		}
		waves := (opt.Orderings + g - 1) / g
		out = append(out, ThroughputPoint{
			Groups:             g,
			ProcsPerGroup:      cl.Processors,
			CampaignSeconds:    float64(waves) * res.TotalSeconds,
			FirstResultSeconds: res.TotalSeconds,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no valid partitionings of %d processors", opt.Processors)
	}
	best := 0
	for i := range out {
		if out[i].CampaignSeconds < out[best].CampaignSeconds {
			best = i
		}
	}
	out[best].Best = true
	return out, nil
}

// RenderThroughput renders the study as a table.
func RenderThroughput(points []ThroughputPoint, orderings, processors int) string {
	tbl := &stats.Table{Headers: []string{"concurrent orderings", "procs each", "campaign time", "first result", ""}}
	for _, p := range points {
		mark := ""
		if p.Best {
			mark = "<== best throughput"
		}
		tbl.Add(fmt.Sprintf("%d", p.Groups), fmt.Sprintf("%d", p.ProcsPerGroup),
			stats.FormatDuration(p.CampaignSeconds), stats.FormatDuration(p.FirstResultSeconds), mark)
	}
	return fmt.Sprintf("Throughput partitioning: %d orderings on %d processors (paper §3.2)\n%s",
		orderings, processors, tbl.String())
}
