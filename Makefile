GO ?= go

.PHONY: check vet build test race bench

# Tier-1 gate: everything that must pass before a change lands.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-bearing packages (parallel runtime
# and message passing).
race:
	$(GO) test -race ./internal/comm/... ./internal/mlsearch/...

bench:
	$(GO) test -run XXX -bench . -benchmem .
