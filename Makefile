GO ?= go

# Version stamped into every binary's -version output (and the daemon's
# /healthz). Override on release builds: make build VERSION=1.2.0
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X repro/internal/buildinfo.Version=$(VERSION)"

.PHONY: check vet staticcheck build test race difftest bench bench-compare chaos-soak serve-smoke

# Tier-1 gate: everything that must pass before a change lands.
check: vet staticcheck build test race difftest

vet:
	$(GO) vet ./...

# staticcheck runs when the tool is on PATH (CI installs it); local
# environments without it skip with a note rather than failing.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-bearing packages (parallel runtime,
# message passing, the sharded likelihood kernels — including the
# float32/float64 precision property tests — the observability plane,
# and the multi-tenant inference service).
race:
	$(GO) test -race ./internal/comm/... ./internal/mlsearch/... ./internal/likelihood/... ./internal/obs/... ./internal/serve/...

# Differential harness: the cached production engine against the direct
# recomputation reference engine over seeded randomized trees, models,
# and data sets, in both CLV precisions (see DESIGN.md §5g for the
# tolerance contract). -count=1 defeats the test cache so the harness
# really runs.
difftest:
	$(GO) test -count=1 -run TestDifferential ./internal/likelihood/difftest/

# Kernel scaling benchmarks: the sharded pruning and Newton kernels at
# 1/2/4 engine threads under GOMAXPROCS 1/2/4, with -benchmem asserting
# the zero-alloc steady state, plus the pooled wire-codec round trips.
# The final step re-measures the kernels and archives the numbers as
# bench/BENCH_kernels.json (CI uploads it as an artifact).
bench:
	$(GO) test -run XXX -bench 'DownPartial|NewtonEdge|FullSmooth|GradientSmooth' -cpu 1,2,4 -benchmem ./internal/likelihood/
	$(GO) test -run XXX -bench Codec -benchmem ./internal/mlsearch/
	FDML_BENCH_DIR=$(CURDIR)/bench $(GO) test -count=1 -run TestKernelBenchJSON -v ./internal/likelihood/

# Regression gate: re-measure the kernels and diff against the committed
# baseline (BENCH_baseline_kernels.json, captured before the SoA/AVX2
# kernel rewrite). Fails when any kernel is >10% slower than baseline;
# the stdout table is markdown, ready for a CI job summary.
bench-compare:
	FDML_BENCH_DIR=$(CURDIR)/bench $(GO) test -count=1 -run TestKernelBenchJSON ./internal/likelihood/
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline_kernels.json -current bench/BENCH_kernels.json -max-regress 0.10

# Black-box smoke test of the fastdnamld daemon over real HTTP: build
# the binaries, start a 2-worker daemon, submit a job and its duplicate
# with curl, assert the duplicate is a zero-dispatch cache hit, the
# fresh job's tree matches a serial fastdnaml run, and /metrics exposes
# tenant-labeled counters.
serve-smoke:
	./scripts/serve_smoke.sh

# The chaos soaks under the race detector: elastic membership, plus
# concurrent jumbles multiplexed over a churning fleet. The membership
# soak's BENCH_*.json report lands in bench/ (CI uploads it).
chaos-soak:
	FDML_BENCH_DIR=$(CURDIR)/bench $(GO) test -race -count=1 -run 'TestTCPChaosSoak|TestConcurrentTCPChaosSoak' ./internal/mlsearch/
